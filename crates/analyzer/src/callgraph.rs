//! Workspace call graph over the symbol table.
//!
//! Nodes are fn definitions ([`crate::symbols::FnDef`]); edges link a caller
//! to every definition its call sites *may* resolve to under the name-level
//! heuristics. The graph therefore over-approximates real calls (method
//! names resolve by name alone) and under-approximates through function
//! pointers, closures passed across crates, and macro-generated code — see
//! the README's limitations section.

use crate::symbols::{call_sites, CallSite, SymbolTable};
use crate::FileFacts;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// One caller → callee edge, annotated with the witnessing call site.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee definition (index into `SymbolTable::defs`).
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// Adjacency-list call graph; indices parallel `SymbolTable::defs`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per definition.
    pub edges: Vec<Vec<Edge>>,
    /// Unresolved call sites per definition (kept for diagnostics/tests).
    pub call_sites: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph: extracts every body's call sites and resolves them
    /// against the table.
    pub fn build(files: &[FileFacts], table: &SymbolTable) -> CallGraph {
        let mut g = CallGraph {
            edges: vec![Vec::new(); table.defs.len()],
            call_sites: vec![Vec::new(); table.defs.len()],
        };
        for (di, def) in table.defs.iter().enumerate() {
            // INVARIANT: SymbolTable::build only admits bodied fns.
            let (a, b) = def.body.unwrap();
            let sites = call_sites(&files[def.file].tokens, a, b);
            for site in &sites {
                for target in table.resolve(files, def.file, site) {
                    if target != di {
                        g.edges[di].push(Edge { to: target, line: site.line, col: site.col });
                    }
                }
            }
            g.call_sites[di] = sites;
        }
        g
    }

    /// Multi-source BFS from `roots`. Returns, for every reachable
    /// definition (roots included at depth 0), the root it was first
    /// reached from and its BFS parent — enough to reconstruct one shortest
    /// call chain with [`CallGraph::chain`].
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Reached> {
        let mut seen: BTreeMap<usize, Reached> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = roots.iter().copied().collect();
        for &r in roots {
            seen.entry(r).or_insert(Reached { root: r, parent: None });
        }
        while let Some(d) = queue.pop_front() {
            let root = seen[&d].root;
            for e in &self.edges[d] {
                if let Entry::Vacant(v) = seen.entry(e.to) {
                    v.insert(Reached { root, parent: Some(d) });
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// One shortest root → `def` call chain as fn names, from a
    /// [`CallGraph::reachable`] result.
    pub fn chain(
        &self,
        table: &SymbolTable,
        reached: &BTreeMap<usize, Reached>,
        def: usize,
    ) -> Vec<String> {
        let mut names = vec![table.defs[def].name.clone()];
        let mut cur = def;
        while let Some(Reached { parent: Some(p), .. }) = reached.get(&cur) {
            names.push(table.defs[*p].name.clone());
            cur = *p;
        }
        names.reverse();
        names
    }
}

/// How a definition was reached during BFS.
#[derive(Debug, Clone, Copy)]
pub struct Reached {
    /// The root definition whose traversal first reached this one.
    pub root: usize,
    /// BFS predecessor (`None` for roots).
    pub parent: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileFacts, FileKind, Scope};

    fn facts(rel: &str, crate_name: &str, src: &str) -> FileFacts {
        FileFacts::collect(rel, src, FileKind::Library, Scope::for_crate(crate_name))
    }

    fn def_named(table: &SymbolTable, name: &str) -> usize {
        table.by_name[name][0]
    }

    #[test]
    fn edges_cross_files_within_a_crate() {
        let files = vec![
            facts("crates/ensf/src/a.rs", "ensf", "pub fn hot() { helper(); }\n"),
            facts("crates/ensf/src/b.rs", "ensf", "pub fn helper() { leaf(); }\npub fn leaf() {}\n"),
        ];
        let table = SymbolTable::build(&files);
        let g = CallGraph::build(&files, &table);
        let hot = def_named(&table, "hot");
        let helper = def_named(&table, "helper");
        let leaf = def_named(&table, "leaf");
        assert_eq!(g.edges[hot].len(), 1);
        assert_eq!(g.edges[hot][0].to, helper);
        let reached = g.reachable(&[hot]);
        assert!(reached.contains_key(&leaf), "transitive closure reaches leaf");
        assert_eq!(g.chain(&table, &reached, leaf), vec!["hot", "helper", "leaf"]);
    }

    #[test]
    fn recursion_terminates() {
        let files = vec![facts(
            "crates/ensf/src/a.rs",
            "ensf",
            "pub fn ping() { pong(); }\npub fn pong() { ping(); }\n",
        )];
        let table = SymbolTable::build(&files);
        let g = CallGraph::build(&files, &table);
        let reached = g.reachable(&[def_named(&table, "ping")]);
        assert_eq!(reached.len(), 2);
    }

    #[test]
    fn self_calls_do_not_self_edge() {
        let files =
            vec![facts("crates/ensf/src/a.rs", "ensf", "pub fn rec(n: u32) { rec(n); }\n")];
        let table = SymbolTable::build(&files);
        let g = CallGraph::build(&files, &table);
        assert!(g.edges[0].is_empty());
    }
}
