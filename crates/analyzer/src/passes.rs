//! Workspace passes: the interprocedural lints built on the call graph.
//!
//! Three passes run over every file's [`FileFacts`] at once:
//!
//! * [`no_alloc_reachable`] — propagates `// lint: no_alloc` transitively:
//!   nothing reachable from a marked fn may allocate, even across files and
//!   crates.
//! * [`collective_protocol`] — in `dist`/`hpc`, collectives must use the
//!   fault-aware `try_*` variants, and no collective (direct or via a
//!   callee that performs one) may sit inside a rank-dependent branch —
//!   that is the classic divergence/deadlock shape.
//! * [`determinism_dataflow`] — `HashMap`/`HashSet` iteration feeding float
//!   accumulation (fold-order nondeterminism) and raw RNG construction in
//!   `dist`/`ensf` that bypasses the per-(particle,tile) stream API.
//!
//! Findings land at the offending site and honor that file's `allow(...)`
//! directives, exactly like the per-file lints.

use crate::callgraph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::lints::alloc_sites;
use crate::parse::body_block;
use crate::symbols::{call_sites, SymbolTable};
use crate::{Diagnostic, FileFacts};
use std::collections::{BTreeMap, BTreeSet};

/// Combined result of the workspace passes.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Findings across all files, sorted by (file, line, col).
    pub diags: Vec<Diagnostic>,
    /// Findings suppressed by `allow(...)` directives.
    pub suppressed: usize,
}

impl WorkspaceReport {
    fn emit(
        &mut self,
        f: &FileFacts,
        lint: &'static str,
        line: u32,
        col: u32,
        message: String,
        help: &str,
    ) {
        if f.allowed(lint, line) {
            self.suppressed += 1;
            return;
        }
        self.diags.push(Diagnostic {
            lint,
            file: f.rel.clone(),
            line,
            col,
            message,
            snippet: f.line_text(line).to_string(),
            help: help.to_string(),
        });
    }
}

/// Runs every workspace pass over the collected facts.
pub fn run(files: &[FileFacts]) -> WorkspaceReport {
    let table = SymbolTable::build(files);
    let graph = CallGraph::build(files, &table);
    let mut report = WorkspaceReport::default();
    no_alloc_reachable(files, &table, &graph, &mut report);
    collective_protocol(files, &table, &graph, &mut report);
    determinism_dataflow(files, &mut report);
    report
        .diags
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    report
}

/// `no-alloc-reachable`: BFS from every `// lint: no_alloc` fn; any
/// allocating call in a reachable (but not itself marked) fn is flagged,
/// with one shortest call chain as evidence. Direct allocations in marked
/// fns stay the per-file `no-alloc-in-hot-path` lint's job.
fn no_alloc_reachable(
    files: &[FileFacts],
    table: &SymbolTable,
    graph: &CallGraph,
    report: &mut WorkspaceReport,
) {
    // Map each no_alloc marker to its definition via (file, body-open token).
    let mut def_by_body: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (di, def) in table.defs.iter().enumerate() {
        if let Some((open, _)) = def.body {
            def_by_body.insert((def.file, open), di);
        }
    }
    let mut roots: Vec<usize> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (_, open, _) in &f.no_alloc {
            if let Some(&d) = def_by_body.get(&(fi, *open)) {
                roots.push(d);
            }
        }
    }
    roots.sort_unstable();
    roots.dedup();
    let marked: BTreeSet<usize> = roots.iter().copied().collect();

    let reached = graph.reachable(&roots);
    for &def in reached.keys() {
        if marked.contains(&def) {
            continue;
        }
        let d = &table.defs[def];
        let f = &files[d.file];
        // INVARIANT: the symbol table only admits bodied fns.
        let (a, b) = d.body.unwrap();
        let chain = graph.chain(table, &reached, def).join(" -> ");
        for tok in alloc_sites(&f.tokens, a, b) {
            let t = &f.tokens[tok];
            report.emit(
                f,
                "no-alloc-reachable",
                t.line,
                t.col,
                format!(
                    "`{}` allocates in `{}`, which is reachable from `// lint: no_alloc` hot path `{}`",
                    t.text, d.name, chain
                ),
                "hoist the allocation to the caller, take caller-owned scratch, or allow here with a reason",
            );
        }
    }
}

/// Collective method names on `hpc::mpi::Comm`, panicking convenience form.
const COLLECTIVES: &[&str] =
    &["barrier", "allreduce_sum", "gather", "broadcast", "scatter", "allgather", "allgather_concat"];

/// Fault-aware forms of [`COLLECTIVES`].
const TRY_COLLECTIVES: &[&str] = &[
    "try_barrier",
    "try_allreduce_sum",
    "try_gather",
    "try_broadcast",
    "try_scatter",
    "try_allgather",
    "try_allgather_concat",
];

/// Identifiers that make a branch condition rank-dependent.
const RANK_IDENTS: &[&str] = &["rank", "world_rank", "is_root"];

/// True when token `i` is a `.name(` method call with `name` in `set`.
fn is_method_call(tokens: &[Token], i: usize, set: &[&str]) -> bool {
    tokens[i].kind == TokenKind::Ident
        && set.contains(&tokens[i].text.as_str())
        && i >= 1
        && tokens[i - 1].text == "."
        && tokens.get(i + 1).is_some_and(|n| n.text == "(")
}

/// `collective-protocol`: two rules over `dist`/`hpc` library code.
///
/// 1. Every `Comm` collective call site must use the `try_*` fault-aware
///    variant — the panicking forms turn a rank failure into an abort (or a
///    hang at scale) instead of a typed, recoverable error.
/// 2. No collective — called directly or through any fn that transitively
///    performs one — may sit inside an `if`/`while` whose condition is
///    rank-dependent: if only some ranks reach a collective, the others
///    deadlock in it.
fn collective_protocol(
    files: &[FileFacts],
    table: &SymbolTable,
    graph: &CallGraph,
    report: &mut WorkspaceReport,
) {
    // Fixpoint: does a fn (transitively) perform a collective?
    let mut performs: Vec<bool> = table
        .defs
        .iter()
        .map(|d| {
            // INVARIANT: the symbol table only admits bodied fns.
            let (a, b) = d.body.unwrap();
            (a..=b).any(|i| {
                is_method_call(&files[d.file].tokens, i, COLLECTIVES)
                    || is_method_call(&files[d.file].tokens, i, TRY_COLLECTIVES)
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for di in 0..table.defs.len() {
            if !performs[di] && graph.edges[di].iter().any(|e| performs[e.to]) {
                performs[di] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (fi, f) in files.iter().enumerate() {
        if !f.scope.comm {
            continue;
        }
        // Rule 1: non-try collective call sites.
        for i in 0..f.tokens.len() {
            if f.in_test_context(f.tokens[i].line) {
                continue;
            }
            if is_method_call(&f.tokens, i, COLLECTIVES) {
                let t = &f.tokens[i];
                report.emit(
                    f,
                    "collective-protocol",
                    t.line,
                    t.col,
                    format!("`.{}()` is the panicking collective; rank failure becomes an abort", t.text),
                    "use the fault-aware `try_*` variant (with collective_with_retry for shrink/backoff semantics)",
                );
            }
        }

        // Rule 2: collectives lexically inside rank-dependent branches.
        for i in 0..f.tokens.len() {
            let t = &f.tokens[i];
            if t.kind != TokenKind::Ident
                || (t.text != "if" && t.text != "while")
                || f.in_test_context(t.line)
            {
                continue;
            }
            let Some((open, close)) = body_block(&f.tokens, &f.structure.brace_pair, i) else {
                continue;
            };
            let cond_rank_dep = f.tokens[i + 1..open].iter().any(|c| {
                c.kind == TokenKind::Ident && RANK_IDENTS.contains(&c.text.as_str())
            });
            if !cond_rank_dep {
                continue;
            }
            let mut ranges = vec![(open, close)];
            // A plain `else { ... }` block is guarded by the same condition;
            // `else if` chains are caught by their own `if` scan.
            if f.tokens.get(close + 1).is_some_and(|n| n.text == "else")
                && f.tokens.get(close + 2).is_some_and(|n| n.text == "{")
            {
                if let Some(&else_close) = f.structure.brace_pair.get(&(close + 2)) {
                    ranges.push((close + 2, else_close));
                }
            }
            for (a, b) in ranges {
                for j in a..=b {
                    if is_method_call(&f.tokens, j, COLLECTIVES)
                        || is_method_call(&f.tokens, j, TRY_COLLECTIVES)
                    {
                        let c = &f.tokens[j];
                        report.emit(
                            f,
                            "collective-protocol",
                            c.line,
                            c.col,
                            format!(
                                "collective `.{}()` inside a rank-dependent branch: ranks that skip it deadlock the others",
                                c.text
                            ),
                            "restructure so every rank reaches the same collective sequence; root-only work belongs after the collective returns",
                        );
                    }
                }
                for site in call_sites(&f.tokens, a, b) {
                    let targets = table.resolve(files, fi, &site);
                    if targets.iter().any(|&d| performs[d]) {
                        report.emit(
                            f,
                            "collective-protocol",
                            site.line,
                            site.col,
                            format!(
                                "`{}` performs collectives and is called inside a rank-dependent branch",
                                site.callee
                            ),
                            "restructure so every rank reaches the same collective sequence; root-only work belongs after the collective returns",
                        );
                    }
                }
            }
        }
    }
}

/// Hash-container iteration entry points.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// Chained accumulators whose result depends on iteration order for floats.
const ACCUM_METHODS: &[&str] = &["sum", "fold", "product"];

/// Raw RNG constructors that bypass the seeded stream API.
const RNG_CONSTRUCTORS: &[&str] =
    &["seed_from_u64", "from_seed", "from_rng", "from_os_rng", "from_entropy", "thread_rng"];

/// Seed-derivation fns that make a `seeded(...)` call stream-disciplined.
const STREAM_DERIVERS: &[&str] = &["split_seed", "member_rng", "tile_rng"];

/// Determinism dataflow: `hash-float-fold` and `rng-stream-discipline`.
fn determinism_dataflow(files: &[FileFacts], report: &mut WorkspaceReport) {
    for f in files {
        if f.scope.hash_order {
            hash_float_fold(f, report);
        }
        if f.scope.rng_strict {
            rng_stream_discipline(f, report);
        }
    }
}

/// Matching `)` for the `(` at `open` (token index), or `open` if unmatched.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    open
}

/// True when `a..=b` contains float evidence: a float literal or `f64`/`f32`.
fn has_float_evidence(tokens: &[Token], a: usize, b: usize) -> bool {
    tokens[a..=b.min(tokens.len() - 1)].iter().any(|t| {
        t.kind == TokenKind::Float
            || (t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32"))
    })
}

/// `hash-float-fold`: iteration over a `HashMap`/`HashSet`-typed local or
/// parameter that feeds float accumulation (`.sum()`/`.fold()`/`.product()`
/// chains, or `+=`/`*=` inside a `for` body). Per-process hash seeding makes
/// the fold order — and therefore the float rounding — nondeterministic.
///
/// Binding detection is lexical: `let` statements and fn parameters whose
/// type/initializer mentions `HashMap`/`HashSet`. Float evidence is searched
/// over the enclosing fn (signature + body), so integer-only counters don't
/// trip the lint.
fn hash_float_fold(f: &FileFacts, report: &mut WorkspaceReport) {
    const HELP: &str = "iterate a BTreeMap/BTreeSet or sort keys first; hash order changes per process and reorders the float fold";
    for item in &f.structure.fns {
        let Some((a, b)) = item.body_tokens else { continue };
        if f.in_test_context(item.header_line) {
            continue;
        }
        let sig_start = item.kw_idx;
        let float_fn = has_float_evidence(&f.tokens, sig_start, b);
        if !float_fn {
            continue;
        }
        let hash_names = hash_bindings(&f.tokens, sig_start, a, b);
        if hash_names.is_empty() {
            continue;
        }

        // `.iter()/.values()/...` chains ending in sum/fold/product.
        for i in a..=b {
            let t = &f.tokens[i];
            if t.kind != TokenKind::Ident || !hash_names.contains(&t.text) {
                continue;
            }
            if !(f.tokens.get(i + 1).is_some_and(|n| n.text == ".")
                && f.tokens.get(i + 2).is_some_and(|n| {
                    n.kind == TokenKind::Ident && ITER_METHODS.contains(&n.text.as_str())
                })
                && f.tokens.get(i + 3).is_some_and(|n| n.text == "("))
            {
                continue;
            }
            let mut close = match_paren(&f.tokens, i + 3);
            // Walk the method chain looking for an accumulator.
            while f.tokens.get(close + 1).is_some_and(|n| n.text == ".")
                && f.tokens.get(close + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                let m = &f.tokens[close + 2];
                // Skip past an optional `::<T>` turbofish to the call parens.
                let mut k = close + 3;
                while k < f.tokens.len() && k < close + 12 && f.tokens[k].text != "(" {
                    k += 1;
                }
                if f.tokens.get(k).is_none_or(|n| n.text != "(") {
                    break;
                }
                let call_close = match_paren(&f.tokens, k);
                if ACCUM_METHODS.contains(&m.text.as_str()) {
                    report.emit(
                        f,
                        "hash-float-fold",
                        m.line,
                        m.col,
                        format!(
                            "`.{}()` folds floats in hash-iteration order of `{}`",
                            m.text, t.text
                        ),
                        HELP,
                    );
                    break;
                }
                close = call_close;
            }
        }

        // `for _ in &map { acc += ... }` loops.
        for i in a..=b {
            let t = &f.tokens[i];
            if t.kind != TokenKind::Ident || t.text != "for" {
                continue;
            }
            let Some((open, close)) = body_block(&f.tokens, &f.structure.brace_pair, i) else {
                continue;
            };
            let Some(in_idx) =
                (i..open).find(|&k| f.tokens[k].kind == TokenKind::Ident && f.tokens[k].text == "in")
            else {
                continue;
            };
            let iterates_hash = f.tokens[in_idx + 1..open]
                .iter()
                .any(|c| c.kind == TokenKind::Ident && hash_names.contains(&c.text));
            if !iterates_hash {
                continue;
            }
            for j in open..=close {
                let bt = &f.tokens[j];
                if bt.kind == TokenKind::Punct && (bt.text == "+=" || bt.text == "*=") {
                    report.emit(
                        f,
                        "hash-float-fold",
                        bt.line,
                        bt.col,
                        format!("`{}` accumulates in hash-iteration order of the loop over a HashMap/HashSet", bt.text),
                        HELP,
                    );
                }
            }
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` values in a fn: parameters
/// (signature range `sig..open`) and `let` bindings (body `open..=close`).
fn hash_bindings(tokens: &[Token], sig: usize, open: usize, close: usize) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let is_hash =
        |t: &Token| t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet");
    // Parameters: `name: ... HashMap ...` — walk back from the type to the
    // nearest `:` and take the ident before it.
    for j in sig..open {
        if !is_hash(&tokens[j]) {
            continue;
        }
        for k in (sig..j).rev() {
            if tokens[k].text == ":" && k >= 1 && tokens[k - 1].kind == TokenKind::Ident {
                names.insert(tokens[k - 1].text.clone());
                break;
            }
            if tokens[k].text == "," || tokens[k].text == "(" {
                break;
            }
        }
    }
    // Lets: `let [mut] name ... = ... HashMap ... ;` at statement level.
    let mut i = open;
    while i <= close.min(tokens.len().saturating_sub(1)) {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "let" {
            let mut n = i + 1;
            if tokens.get(n).is_some_and(|t| t.text == "mut") {
                n += 1;
            }
            if let Some(name_tok) = tokens.get(n).filter(|t| t.kind == TokenKind::Ident) {
                // Statement extent: to the first `;` at neutral depth.
                let mut depth = 0i32;
                let mut j = n;
                let mut mentions_hash = false;
                while j <= close {
                    let tj = &tokens[j];
                    if is_hash(tj) {
                        mentions_hash = true;
                    }
                    if tj.kind == TokenKind::Punct {
                        match tj.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if mentions_hash {
                    names.insert(name_tok.text.clone());
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    names
}

/// `rng-stream-discipline`: in `dist`/`ensf` library code, RNGs must come
/// from the seeded per-(particle,tile) stream API. Raw constructors
/// (`StdRng::seed_from_u64`, `from_entropy`, `thread_rng`, ...) and
/// `seeded(...)` calls whose seed is not derived through
/// `split_seed`/`member_rng`/`tile_rng` are flagged: a raw or shared stream
/// either breaks run-to-run reproducibility or correlates particles.
fn rng_stream_discipline(f: &FileFacts, report: &mut WorkspaceReport) {
    for i in 0..f.tokens.len() {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident || f.in_test_context(t.line) {
            continue;
        }
        if RNG_CONSTRUCTORS.contains(&t.text.as_str())
            && f.tokens.get(i + 1).is_some_and(|n| n.text == "(")
        {
            report.emit(
                f,
                "rng-stream-discipline",
                t.line,
                t.col,
                format!("raw RNG construction `{}` bypasses the seeded stream API", t.text),
                "derive streams with stats::rng::{member_rng, split_seed + seeded} (or dist's tile_rng) so every (particle, tile) draw is replicated on all ranks",
            );
            continue;
        }
        if t.text == "seeded" && f.tokens.get(i + 1).is_some_and(|n| n.text == "(") {
            // Skip the definition site `fn seeded(` (stats isn't in scope
            // anyway) and calls whose argument derives a child stream.
            if i >= 1 && f.tokens[i - 1].text == "fn" {
                continue;
            }
            let close = match_paren(&f.tokens, i + 1);
            let derived = f.tokens[i + 1..=close].iter().any(|a| {
                a.kind == TokenKind::Ident && STREAM_DERIVERS.contains(&a.text.as_str())
            });
            if !derived {
                report.emit(
                    f,
                    "rng-stream-discipline",
                    t.line,
                    t.col,
                    "`seeded(...)` without a derived child seed shares one stream across particles/tiles".to_string(),
                    "derive the seed with split_seed(parent, stream) (or use member_rng/tile_rng) so streams stay decorrelated and rank-layout invariant",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileFacts, FileKind, Scope};

    fn facts(rel: &str, crate_name: &str, src: &str) -> FileFacts {
        FileFacts::collect(rel, src, FileKind::Library, Scope::for_crate(crate_name))
    }

    fn lints_of(files: &[FileFacts]) -> Vec<(String, String, u32)> {
        run(files)
            .diags
            .into_iter()
            .map(|d| (d.lint.to_string(), d.file, d.line))
            .collect()
    }

    #[test]
    fn reachable_alloc_across_files_is_flagged() {
        let files = vec![
            facts(
                "crates/ensf/src/hot.rs",
                "ensf",
                "// lint: no_alloc\npub fn hot(out: &mut [f64]) {\n    helper(out);\n}\n",
            ),
            facts(
                "crates/ensf/src/util.rs",
                "ensf",
                "pub fn helper(out: &mut [f64]) {\n    let v: Vec<f64> = Vec::new();\n    let _ = v;\n    let _ = out;\n}\n",
            ),
        ];
        let found = lints_of(&files);
        assert_eq!(
            found,
            vec![("no-alloc-reachable".into(), "crates/ensf/src/util.rs".into(), 2)]
        );
    }

    #[test]
    fn chain_is_reported_through_intermediate_fns() {
        let files = vec![facts(
            "crates/sqg/src/a.rs",
            "sqg",
            "// lint: no_alloc\nfn hot() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { let s = String::new(); let _ = s; }\n",
        )];
        let r = run(&files);
        assert_eq!(r.diags.len(), 1);
        assert!(
            r.diags[0].message.contains("hot -> mid -> leaf"),
            "chain missing: {}",
            r.diags[0].message
        );
    }

    #[test]
    fn marked_fn_direct_allocs_stay_per_file_lint() {
        // The workspace pass must not duplicate no-alloc-in-hot-path.
        let files = vec![facts(
            "crates/ensf/src/hot.rs",
            "ensf",
            "// lint: no_alloc\npub fn hot() {\n    let v = Vec::new();\n    let _: Vec<f64> = v;\n}\n",
        )];
        let found = lints_of(&files);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn allow_at_the_allocating_site_suppresses() {
        let files = vec![
            facts(
                "crates/ensf/src/hot.rs",
                "ensf",
                "// lint: no_alloc\npub fn hot() { helper(); }\n",
            ),
            facts(
                "crates/ensf/src/util.rs",
                "ensf",
                "pub fn helper() {\n    let v = Vec::new(); // lint: allow(no-alloc-reachable, reason=\"one-time warmup, not on the per-step path\")\n    let _: Vec<f64> = v;\n}\n",
            ),
        ];
        let r = run(&files);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn non_try_collective_flagged_in_comm_crates_only() {
        let bad = facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(comm: &Comm, x: &mut [f64]) {\n    comm.allreduce_sum(x);\n}\n",
        );
        let found = lints_of(&[bad]);
        assert_eq!(found, vec![("collective-protocol".into(), "crates/dist/src/a.rs".into(), 2)]);
        let elsewhere = facts(
            "crates/telemetry/src/a.rs",
            "telemetry",
            "fn f(comm: &Comm, x: &mut [f64]) {\n    comm.allreduce_sum(x);\n}\n",
        );
        assert!(lints_of(&[elsewhere]).is_empty());
    }

    #[test]
    fn try_collective_unguarded_is_clean() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(comm: &Comm, x: &mut [f64]) -> Result<(), MpiError> {\n    comm.try_allreduce_sum(x)\n}\n",
        )];
        assert!(lints_of(&files).is_empty());
    }

    #[test]
    fn rank_guarded_collective_is_flagged() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(comm: &Comm, rank: usize, x: &[f64]) {\n    if rank == 0 {\n        let _ = comm.try_allgather(x);\n    }\n}\n",
        )];
        let found = lints_of(&files);
        assert_eq!(found, vec![("collective-protocol".into(), "crates/dist/src/a.rs".into(), 3)]);
    }

    #[test]
    fn rank_guarded_else_branch_is_flagged() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(comm: &Comm, rank: usize, x: &[f64]) {\n    if rank == 0 {\n        let _ = 1;\n    } else {\n        let _ = comm.try_allgather(x);\n    }\n}\n",
        )];
        let found = lints_of(&files);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].2, 5);
    }

    #[test]
    fn rank_guarded_call_into_collective_helper_is_flagged() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn sync(comm: &Comm, x: &mut [f64]) {\n    let _ = comm.try_allreduce_sum(x);\n}\nfn f(comm: &Comm, rank: usize, x: &mut [f64]) {\n    if rank == 0 {\n        sync(comm, x);\n    }\n}\n",
        )];
        let found = lints_of(&files);
        assert_eq!(found, vec![("collective-protocol".into(), "crates/dist/src/a.rs".into(), 6)]);
    }

    #[test]
    fn rank_local_postprocessing_after_collective_is_clean() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(comm: &Comm, rank: usize, x: &[f64]) -> f64 {\n    let blocks = comm.try_allgather(x);\n    if rank == 0 {\n        return 1.0;\n    }\n    let _ = blocks;\n    0.0\n}\n",
        )];
        assert!(lints_of(&files).is_empty());
    }

    #[test]
    fn hash_iteration_feeding_float_sum_is_flagged() {
        let files = vec![facts(
            "crates/ensf/src/a.rs",
            "ensf",
            "// lint: allow(nondeterministic-api, reason=\"test of the fold lint\")\nfn f(m: &HashMap<u32, f64>) -> f64 {\n    m.values().sum::<f64>()\n}\n",
        )];
        let found = lints_of(&files);
        assert_eq!(found, vec![("hash-float-fold".into(), "crates/ensf/src/a.rs".into(), 3)]);
    }

    #[test]
    fn hash_for_loop_accumulation_is_flagged() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(m: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0f64;\n    for (_, v) in m {\n        acc += v;\n    }\n    acc\n}\n",
        )];
        let found = lints_of(&files);
        assert_eq!(found, vec![("hash-float-fold".into(), "crates/dist/src/a.rs".into(), 4)]);
    }

    #[test]
    fn integer_hash_counters_are_not_flagged() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(m: &HashMap<u32, u64>) -> u64 {\n    let mut acc = 0u64;\n    for (_, v) in m {\n        acc += v;\n    }\n    acc\n}\n",
        )];
        assert!(lints_of(&files).is_empty());
    }

    #[test]
    fn btree_iteration_is_clean() {
        let files = vec![facts(
            "crates/ensf/src/a.rs",
            "ensf",
            "fn f(m: &BTreeMap<u32, f64>) -> f64 {\n    m.values().sum::<f64>()\n}\n",
        )];
        assert!(lints_of(&files).is_empty());
    }

    #[test]
    fn raw_rng_construction_flagged_in_rng_strict_crates() {
        let files = vec![facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f() -> StdRng {\n    StdRng::seed_from_u64(7)\n}\n",
        )];
        let found = lints_of(&files);
        assert_eq!(found, vec![("rng-stream-discipline".into(), "crates/dist/src/a.rs".into(), 2)]);
    }

    #[test]
    fn underived_seeded_call_is_flagged_but_split_seed_is_clean() {
        let bad = facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f() -> StdRng {\n    seeded(42)\n}\n",
        );
        let found = lints_of(&[bad]);
        assert_eq!(found, vec![("rng-stream-discipline".into(), "crates/dist/src/a.rs".into(), 2)]);
        let good = facts(
            "crates/dist/src/a.rs",
            "dist",
            "fn f(seed: u64, p: usize, t: usize) -> StdRng {\n    seeded(split_seed(split_seed(seed, p as u64), t as u64))\n}\n",
        );
        assert!(lints_of(&[good]).is_empty());
    }

    #[test]
    fn rng_lints_do_not_apply_outside_dist_ensf() {
        let files = vec![facts(
            "crates/stats/src/rng.rs",
            "stats",
            "pub fn seeded(seed: u64) -> StdRng {\n    StdRng::seed_from_u64(seed)\n}\n",
        )];
        assert!(lints_of(&files).is_empty());
    }
}
