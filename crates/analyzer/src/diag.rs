//! Diagnostics: rustc-style human rendering and JSON export.

/// One finding, anchored to a file/line/column.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name (kebab-case) or `lint-directive` for malformed directives.
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// One-sentence statement of the violation.
    pub message: String,
    /// Verbatim source line (trimmed of trailing whitespace).
    pub snippet: String,
    /// How to fix or justify it.
    pub help: String,
}

impl Diagnostic {
    /// Renders in rustc style with the offending line and a caret.
    pub fn render(&self) -> String {
        let gutter = format!("{}", self.line).len().max(2);
        let pad = " ".repeat(gutter);
        let caret_pad = " ".repeat(self.col.saturating_sub(1) as usize);
        format!(
            "error[{lint}]: {msg}\n{pad}--> {file}:{line}:{col}\n{pad} |\n{line:>gutter$} | {snippet}\n{pad} | {caret_pad}^\n{pad} = help: {help}\n",
            lint = self.lint,
            msg = self.message,
            file = self.file,
            line = self.line,
            col = self.col,
            snippet = self.snippet,
            help = self.help,
            pad = pad,
            caret_pad = caret_pad,
            gutter = gutter,
        )
    }

    /// Renders as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lint\":{},\"file\":{},\"line\":{},\"column\":{},\"message\":{},\"help\":{}}}",
            json_str(self.lint),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.help),
        )
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic {
            lint: "float-exact-compare",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 10,
            message: "exact float comparison".into(),
            snippet: "if x == 0.0 {".into(),
            help: "compare with a tolerance".into(),
        };
        let r = d.render();
        assert!(r.starts_with("error[float-exact-compare]:"));
        assert!(r.contains("--> crates/x/src/lib.rs:7:10"));
        assert!(r.contains(" 7 | if x == 0.0 {"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
