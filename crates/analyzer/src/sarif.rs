//! SARIF 2.1.0 output (`--sarif`).
//!
//! Emits the minimal static-analysis interchange shape CI annotators
//! understand: one run, the full lint registry as `rules` (stable
//! `ruleIndex` regardless of which lints fired), and one `result` per
//! diagnostic with a physical location. Hand-rendered like the rest of the
//! analyzer's JSON — no serde in this workspace.

use crate::diag::json_str;
use crate::{Diagnostic, LINTS};

/// Tool version reported in the SARIF `driver` block. Bump when the lint
/// set or the output shape changes meaningfully.
pub const TOOL_VERSION: &str = "2.0.0";

/// Renders a complete SARIF 2.1.0 log for `diags`.
///
/// Results must already be sorted (file, line, col) — the renderer preserves
/// input order. `files_scanned` and `suppressed` land in the run's
/// `properties` bag, which SARIF reserves for tool-specific extras.
pub fn render(diags: &[Diagnostic], suppressed: usize, files_scanned: usize) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 512);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"analyzer\",\n");
    out.push_str(&format!("          \"version\": {},\n", json_str(TOOL_VERSION)));
    out.push_str("          \"rules\": [\n");
    for (i, l) in LINTS.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(l.name),
            json_str(l.desc),
            if i + 1 < LINTS.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str(&format!(
        "      \"properties\": {{\"filesScanned\": {files_scanned}, \"suppressedFindings\": {suppressed}}},\n"
    ));
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = LINTS.iter().position(|l| l.name == d.lint).unwrap_or(0);
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", json_str(d.lint)));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(&format!("{} — {}", d.message, d.help))
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str(&format!(
            "              \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}\n",
            json_str(&d.file),
            d.line,
            d.col
        ));
        out.push_str("            }\n          ]\n");
        out.push_str(&format!("        }}{}\n", if i + 1 < diags.len() { "," } else { "" }));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            lint: "float-exact-compare",
            file: "crates/sqg/src/a.rs".to_string(),
            line: 7,
            col: 9,
            message: "exact float comparison `==`".to_string(),
            snippet: "    x == 0.0".to_string(),
            help: "compare against a tolerance".to_string(),
        }
    }

    #[test]
    fn sarif_has_schema_rules_and_result_location() {
        let s = render(&[diag()], 2, 5);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"ruleId\": \"float-exact-compare\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\"startColumn\": 9"));
        assert!(s.contains("\"uri\": \"crates/sqg/src/a.rs\""));
        assert!(s.contains("\"suppressedFindings\": 2"));
        // Every registered lint appears as a rule even when it didn't fire.
        for l in LINTS {
            assert!(s.contains(&format!("{{\"id\": \"{}\"", l.name)), "missing rule {}", l.name);
        }
    }

    #[test]
    fn empty_results_render_as_empty_array() {
        let s = render(&[], 0, 3);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn rule_index_matches_registry_position() {
        let s = render(&[diag()], 0, 1);
        let want = LINTS.iter().position(|l| l.name == "float-exact-compare").unwrap();
        assert!(s.contains(&format!("\"ruleIndex\": {want},")));
    }
}
