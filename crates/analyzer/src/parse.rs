//! Lightweight structural pass over the token stream.
//!
//! Recovers just enough shape for the lints: matched brace pairs, attribute
//! extents, `#[cfg(test)]` / `#[test]` regions, and `fn` items with their
//! body spans. No expression parsing, no name resolution.

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A `fn` item: keyword position, name, and body extent (when it has one).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (`_` if the next token isn't an identifier).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw_idx: usize,
    /// Line of the `fn` keyword.
    pub header_line: u32,
    /// Body line range (open-brace line ..= close-brace line).
    pub body_lines: Option<(u32, u32)>,
    /// Body token index range (open brace ..= close brace).
    pub body_tokens: Option<(usize, usize)>,
}

/// Structural facts about one file.
#[derive(Debug, Default)]
pub struct Structure {
    /// Open-brace token index -> matching close-brace token index.
    pub brace_pair: BTreeMap<usize, usize>,
    /// Inclusive line ranges of `#[cfg(test)]` modules and `#[test]` fns.
    pub test_regions: Vec<(u32, u32)>,
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Lines covered by `#[...]` / `#![...]` attributes.
    pub attr_lines: BTreeSet<u32>,
}

impl Structure {
    /// True when `line` falls inside a `#[cfg(test)]` module or `#[test]` fn.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The innermost `fn` whose body contains `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body_lines.is_some_and(|(a, b)| a <= line && line <= b))
            .min_by_key(|f| {
                // INVARIANT: the filter above keeps only fns with a body.
                let (a, b) = f.body_lines.unwrap();
                b - a
            })
    }
}

/// Builds the [`Structure`] for a token stream.
pub fn analyze(tokens: &[Token]) -> Structure {
    let mut st = Structure::default();

    // Brace matching.
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    st.brace_pair.insert(open, i);
                }
            }
            _ => {}
        }
    }

    // Attributes, test regions, fn items.
    let mut pending_test = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Attribute: `#` (`!`)? `[` ... `]`.
        if t.kind == TokenKind::Punct && t.text == "#" {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].text == "!" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "[" {
                let close = match_bracket(tokens, j);
                let idents: Vec<&str> = tokens[j..=close]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                if idents.first() == Some(&"test")
                    || (idents.contains(&"cfg") && idents.contains(&"test"))
                {
                    pending_test = true;
                }
                for l in t.line..=tokens[close].line {
                    st.attr_lines.insert(l);
                }
                i = close + 1;
                continue;
            }
        }

        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "fn" => {
                    let name = tokens
                        .get(i + 1)
                        .filter(|n| n.kind == TokenKind::Ident)
                        .map_or_else(|| "_".to_string(), |n| n.text.clone());
                    let body = body_block(tokens, &st.brace_pair, i);
                    let item = FnItem {
                        name,
                        kw_idx: i,
                        header_line: t.line,
                        body_lines: body.map(|(o, c)| (tokens[o].line, tokens[c].line)),
                        body_tokens: body,
                    };
                    if pending_test {
                        if let Some((a, b)) = item.body_lines {
                            st.test_regions.push((a.min(item.header_line), b));
                        }
                        pending_test = false;
                    }
                    st.fns.push(item);
                }
                "mod" => {
                    if pending_test {
                        if let Some((o, c)) = body_block(tokens, &st.brace_pair, i) {
                            st.test_regions.push((t.line, tokens[c].line));
                            let _ = o;
                        }
                        pending_test = false;
                    }
                }
                // Modifiers and linkage ABI strings keep a pending `#[test]`
                // alive between the attribute and the `fn` keyword.
                "pub" | "const" | "async" | "unsafe" | "extern" | "crate" | "in" | "super"
                | "self" => {}
                _ => pending_test = false,
            }
        } else if t.kind == TokenKind::Str || matches!(t.text.as_str(), "(" | ")") {
            // `pub(crate)` / `extern "C"` between attribute and item.
        } else {
            pending_test = false;
        }
        i += 1;
    }
    st
}

/// Matching `]` for the `[` at `open` (falls back to `open` when unmatched).
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    open
}

/// Finds the body block `{...}` of the item starting at token `start`:
/// the first `{` reached at zero paren/bracket depth before a terminating
/// `;` or the end of the enclosing block. Returns `(open_idx, close_idx)`.
pub fn body_block(
    tokens: &[Token],
    brace_pair: &BTreeMap<usize, usize>,
    start: usize,
) -> Option<(usize, usize)> {
    let mut parens = 0i32;
    let mut brackets = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => parens += 1,
            ")" => parens -= 1,
            "[" => brackets += 1,
            "]" => brackets -= 1,
            "{" if parens == 0 && brackets == 0 => {
                return brace_pair.get(&k).map(|&close| (k, close));
            }
            ";" if parens == 0 && brackets == 0 => return None,
            "}" if parens == 0 && brackets == 0 => return None,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_fn_bodies() {
        let src = "fn a() { 1 }\npub fn b(x: [u8; 4]) -> u8 { x[0] }\nfn decl();\n";
        let lexed = lex(src);
        let st = analyze(&lexed.tokens);
        assert_eq!(st.fns.len(), 3);
        assert!(st.fns[0].body_lines.is_some());
        assert!(st.fns[1].body_lines.is_some(), "array type in signature handled");
        assert!(st.fns[2].body_lines.is_none());
    }

    #[test]
    fn cfg_test_module_is_test_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let lexed = lex(src);
        let st = analyze(&lexed.tokens);
        assert!(!st.in_test_region(1));
        assert!(st.in_test_region(4));
        assert!(st.in_test_region(5));
    }

    #[test]
    fn test_attr_fn_is_test_region() {
        let src = "#[test]\nfn t() {\n    let x = 1;\n}\nfn lib() {}\n";
        let lexed = lex(src);
        let st = analyze(&lexed.tokens);
        assert!(st.in_test_region(3));
        assert!(!st.in_test_region(5));
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        let x = 1;\n    }\n}\n";
        let lexed = lex(src);
        let st = analyze(&lexed.tokens);
        let f = st.enclosing_fn(3).unwrap();
        assert_eq!(f.name, "inner");
    }

    #[test]
    fn attr_lines_recorded() {
        let src = "#[derive(\n    Debug,\n)]\nstruct S;\n";
        let lexed = lex(src);
        let st = analyze(&lexed.tokens);
        assert!(st.attr_lines.contains(&1));
        assert!(st.attr_lines.contains(&3));
        assert!(!st.attr_lines.contains(&4));
    }
}
