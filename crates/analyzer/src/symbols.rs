//! Workspace symbol table: `fn` definitions and call sites.
//!
//! Built from the structural parse of every file, this is the name-level
//! layer under the call graph. Resolution is **heuristic** — there is no
//! type information, so method calls and unqualified paths resolve by name
//! with a same-file → same-crate → workspace preference chain (see
//! [`SymbolTable::resolve`] and the README's limitations section).

use crate::lexer::{Token, TokenKind};
use crate::{FileFacts, FileKind};
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` definition somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Index of the defining file in the analyzed slice.
    pub file: usize,
    /// Line of the `fn` keyword.
    pub header_line: u32,
    /// Body token index range (open brace ..= close brace), if any.
    pub body: Option<(usize, usize)>,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// Bare `name(...)`.
    Free,
    /// Method syntax `recv.name(...)` — receiver type unknown.
    Method,
    /// Path syntax `a::b::name(...)`; carries the path segments before the
    /// callee (`["a", "b"]`).
    Path(Vec<String>),
}

/// One resolved-by-syntax call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// Syntax used at the call site.
    pub kind: CallKind,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
}

/// Keywords and primitives that can precede `(` without being calls.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "else", "in", "as", "move",
    "ref", "mut", "pub", "use", "where", "impl", "struct", "enum", "trait", "type", "const",
    "static", "unsafe", "async", "await", "dyn", "break", "continue", "crate", "super", "Self",
    "self", "true", "false",
];

/// Extracts every call site in the token range `a..=b`.
///
/// A call site is an identifier directly followed by `(`, excluding keyword
/// forms (`if (`, ...), definitions (`fn name(`), and macro invocations
/// (`name!(` never matches because `!` intervenes). Turbofish calls
/// (`collect::<T>()`) are *not* recognized — in practice those are std
/// methods, not workspace fns.
pub fn call_sites(tokens: &[Token], a: usize, b: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in a..=b.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || NON_CALLEES.contains(&t.text.as_str()) {
            continue;
        }
        if tokens.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        if prev == Some("fn") {
            continue;
        }
        let kind = match prev {
            Some(".") => CallKind::Method,
            Some("::") => {
                // Walk the path backwards: `seg :: seg :: callee (`.
                let mut segs: Vec<String> = Vec::new();
                let mut j = i;
                while j >= 2
                    && tokens[j - 1].text == "::"
                    && tokens[j - 2].kind == TokenKind::Ident
                {
                    segs.push(tokens[j - 2].text.clone());
                    j -= 2;
                }
                segs.reverse();
                if segs.is_empty() {
                    // `<T as Trait>::name(` and friends: unknown qualifier.
                    CallKind::Free
                } else {
                    CallKind::Path(segs)
                }
            }
            _ => CallKind::Free,
        };
        out.push(CallSite { callee: t.text.clone(), kind, tok: i, line: t.line, col: t.col });
    }
    out
}

/// Name-indexed table of every non-test `fn` definition in the workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All definitions, in (file, source) order.
    pub defs: Vec<FnDef>,
    /// Name -> indices into `defs`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Crate path identifiers present in the analyzed set (`da_core`, ...).
    crate_idents: BTreeSet<String>,
}

/// Path identifier a crate directory name is imported under
/// (`core` -> `da_core`, `-` -> `_`).
pub fn crate_path_ident(crate_name: &str) -> String {
    match crate_name {
        "core" => "da_core".to_string(),
        other => other.replace('-', "_"),
    }
}

/// Resolution fan-out cap: a workspace-wide name match this ambiguous is
/// dropped rather than over-linking the graph.
const MAX_GLOBAL_CANDIDATES: usize = 4;

/// Ubiquitous std/trait method names. A `.name(` call with one of these
/// names almost certainly targets a std container/iterator/atomic, not a
/// workspace fn that happens to share the name — resolving them by name
/// alone links the graph to essentially everything (`.load()` →
/// some crate's `fn load`, `.collect()` → `FileFacts::collect`, ...).
const STD_METHODS: &[&str] = &[
    "abs", "add", "all", "and_then", "any", "as_bytes", "as_mut", "as_ref", "as_slice", "bytes",
    "chain", "chars", "chunks", "chunks_exact", "chunks_mut", "clear", "clone", "cmp", "collect",
    "contains", "contains_key", "copy_from_slice", "count", "default", "div", "drain", "enumerate",
    "eq", "expect", "extend", "extend_from_slice", "fill", "filter", "find", "first", "flat_map",
    "fmt", "fold", "for_each", "from", "get", "get_mut", "get_or_init", "hash", "insert", "into",
    "into_iter", "is_empty", "iter", "iter_mut", "join", "last", "len", "load", "lock", "map",
    "max", "min", "mul", "neg", "next", "par_chunks", "par_chunks_mut", "par_iter", "par_iter_mut",
    "pop", "position", "powf", "powi", "product", "push", "push_str", "read", "remove", "replace",
    "resize", "rev", "skip", "sort", "sort_by", "sort_unstable", "split", "sqrt", "store", "sub",
    "sum", "swap", "take", "to_owned", "to_string", "to_vec", "truncate", "unwrap", "windows",
    "write", "zip",
];

impl SymbolTable {
    /// Builds the table over every Library/Bin file, skipping fns inside
    /// `#[cfg(test)]` regions, bodiless declarations, and `_`-named items.
    pub fn build(files: &[FileFacts]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (fi, f) in files.iter().enumerate() {
            table.crate_idents.insert(crate_path_ident(&f.scope.crate_name));
            if !matches!(f.kind, FileKind::Library | FileKind::Bin) {
                continue;
            }
            for item in &f.structure.fns {
                if item.name == "_"
                    || item.body_tokens.is_none()
                    || f.structure.in_test_region(item.header_line)
                {
                    continue;
                }
                let idx = table.defs.len();
                table.defs.push(FnDef {
                    name: item.name.clone(),
                    file: fi,
                    header_line: item.header_line,
                    body: item.body_tokens,
                });
                table.by_name.entry(item.name.clone()).or_default().push(idx);
            }
        }
        table
    }

    /// Candidate definitions for `site`, observed from `from_file`.
    ///
    /// Heuristics, in order:
    /// 1. A path whose first segment names a workspace crate restricts to
    ///    that crate. A capitalized qualifier (`Vec::new`, `Tensor::zeros`)
    ///    is a type-associated call with an unknown type — never resolved
    ///    (documented limitation). Other lowercase qualifiers (`rng::seeded`)
    ///    are module paths, resolved within the caller's crate.
    /// 2. Method calls (`recv.name(`): ubiquitous std names
    ///    ([`STD_METHODS`]) never resolve; the rest resolve same-file then
    ///    same-crate only — receiver types are unknown, so cross-crate
    ///    method edges would over-link the graph.
    /// 3. Free calls: same-file, then same-crate, then the whole workspace —
    ///    but only when the name is rare (≤ [`MAX_GLOBAL_CANDIDATES`]
    ///    matches); common names are dropped to avoid over-linking.
    pub fn resolve(&self, files: &[FileFacts], from_file: usize, site: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&site.callee) else {
            return Vec::new();
        };
        let mut global_ok = true;
        match &site.kind {
            CallKind::Path(segs) => {
                // INVARIANT: CallKind::Path always carries ≥ 1 segment.
                let first = segs.first().unwrap();
                if self.crate_idents.contains(first) {
                    return cands
                        .iter()
                        .copied()
                        .filter(|&d| {
                            crate_path_ident(&files[self.defs[d].file].scope.crate_name) == *first
                        })
                        .collect();
                }
                if first.starts_with(|c: char| c.is_ascii_uppercase()) {
                    return Vec::new();
                }
                global_ok = false;
            }
            CallKind::Method => {
                if STD_METHODS.contains(&site.callee.as_str()) {
                    return Vec::new();
                }
                global_ok = false;
            }
            CallKind::Free => {}
        }
        let same_file: Vec<usize> =
            cands.iter().copied().filter(|&d| self.defs[d].file == from_file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let from_crate = &files[from_file].scope.crate_name;
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&d| &files[self.defs[d].file].scope.crate_name == from_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if global_ok && cands.len() <= MAX_GLOBAL_CANDIDATES {
            cands.clone()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileFacts, FileKind, Scope};

    fn facts(rel: &str, crate_name: &str, src: &str) -> FileFacts {
        FileFacts::collect(rel, src, FileKind::Library, Scope::for_crate(crate_name))
    }

    #[test]
    fn extracts_free_method_and_path_calls() {
        let f = facts("a.rs", "ensf", "fn f() {\n    helper();\n    x.step(1);\n    stats::rng::seeded(7);\n    let v = Vec::new();\n}\n");
        let sites = call_sites(&f.tokens, 0, f.tokens.len() - 1);
        let names: Vec<(&str, &CallKind)> =
            sites.iter().map(|s| (s.callee.as_str(), &s.kind)).collect();
        assert!(names.contains(&("helper", &CallKind::Free)));
        assert!(names.contains(&("step", &CallKind::Method)));
        assert!(sites.iter().any(|s| s.callee == "seeded"
            && s.kind == CallKind::Path(vec!["stats".into(), "rng".into()])));
        assert!(sites
            .iter()
            .any(|s| s.callee == "new" && s.kind == CallKind::Path(vec!["Vec".into()])));
        // `fn f(` is a definition, not a call.
        assert!(!sites.iter().any(|s| s.callee == "f"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let f = facts("a.rs", "ensf", "fn f(x: bool) {\n    if (x) {}\n    println!(\"hi\");\n    for i in (0..3) {}\n}\n");
        let sites = call_sites(&f.tokens, 0, f.tokens.len() - 1);
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn table_skips_test_fns_and_declarations() {
        let f = facts(
            "a.rs",
            "ensf",
            "fn lib() {}\nfn decl();\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        let files = vec![f];
        let table = SymbolTable::build(&files);
        let names: Vec<&str> = table.defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["lib"]);
    }

    #[test]
    fn resolution_prefers_same_file_then_same_crate() {
        let files = vec![
            facts("crates/ensf/src/a.rs", "ensf", "fn work() { helper(); }\nfn helper() {}\n"),
            facts("crates/ensf/src/b.rs", "ensf", "fn helper() {}\n"),
            facts("crates/sqg/src/c.rs", "sqg", "fn helper() {}\nfn caller() { helper(); }\n"),
        ];
        let table = SymbolTable::build(&files);
        let site = CallSite {
            callee: "helper".into(),
            kind: CallKind::Free,
            tok: 0,
            line: 1,
            col: 1,
        };
        let r = table.resolve(&files, 0, &site);
        assert_eq!(r.len(), 1);
        assert_eq!(table.defs[r[0]].file, 0, "same-file candidate wins");
        // From a file with no same-file match but a same-crate one.
        let files2 = vec![
            facts("crates/ensf/src/a.rs", "ensf", "fn work() { helper(); }\n"),
            facts("crates/ensf/src/b.rs", "ensf", "fn helper() {}\n"),
            facts("crates/sqg/src/c.rs", "sqg", "fn helper() {}\n"),
        ];
        let table2 = SymbolTable::build(&files2);
        let r2 = table2.resolve(&files2, 0, &site);
        assert_eq!(r2.len(), 1);
        assert_eq!(table2.defs[r2[0]].file, 1, "same-crate candidate wins");
    }

    #[test]
    fn crate_qualified_path_restricts_to_that_crate() {
        let files = vec![
            facts("crates/dist/src/a.rs", "dist", "fn work() { ensf::helper(); }\n"),
            facts("crates/ensf/src/b.rs", "ensf", "pub fn helper() {}\n"),
            facts("crates/sqg/src/c.rs", "sqg", "pub fn helper() {}\n"),
        ];
        let table = SymbolTable::build(&files);
        let site = CallSite {
            callee: "helper".into(),
            kind: CallKind::Path(vec!["ensf".into()]),
            tok: 0,
            line: 1,
            col: 1,
        };
        let r = table.resolve(&files, 0, &site);
        assert_eq!(r.len(), 1);
        assert_eq!(table.defs[r[0]].file, 1);
    }

    #[test]
    fn ambiguous_global_names_are_dropped() {
        let srcs: Vec<FileFacts> = (0..6)
            .map(|i| {
                facts(
                    &format!("crates/c{i}/src/lib.rs"),
                    &format!("c{i}"),
                    "pub fn new() {}\n",
                )
            })
            .chain(std::iter::once(facts(
                "crates/dist/src/a.rs",
                "dist",
                "fn work() { new(); }\n",
            )))
            .collect();
        let table = SymbolTable::build(&srcs);
        let site =
            CallSite { callee: "new".into(), kind: CallKind::Free, tok: 0, line: 1, col: 1 };
        assert!(table.resolve(&srcs, 6, &site).is_empty(), "6 global candidates > cap");
    }

    #[test]
    fn type_associated_and_std_method_calls_never_resolve() {
        let files = vec![
            facts("crates/dist/src/a.rs", "dist", "fn work(x: &V) { V::new(); x.load(); }\n"),
            facts("crates/ensf/src/b.rs", "ensf", "pub fn new() {}\npub fn load() {}\n"),
        ];
        let table = SymbolTable::build(&files);
        let sites = call_sites(&files[0].tokens, 0, files[0].tokens.len() - 1);
        let new_site = sites.iter().find(|s| s.callee == "new").unwrap();
        assert_eq!(new_site.kind, CallKind::Path(vec!["V".into()]));
        assert!(table.resolve(&files, 0, new_site).is_empty(), "type-qualified call");
        let load_site = sites.iter().find(|s| s.callee == "load").unwrap();
        assert_eq!(load_site.kind, CallKind::Method);
        assert!(table.resolve(&files, 0, load_site).is_empty(), "std method name");
    }

    #[test]
    fn distinctive_method_names_resolve_within_crate_only() {
        let files = vec![
            facts("crates/sqg/src/a.rs", "sqg", "fn work(s: &State) { s.tendency_into(); }\n"),
            facts("crates/sqg/src/b.rs", "sqg", "pub fn tendency_into() {}\n"),
            facts("crates/ensf/src/c.rs", "ensf", "pub fn tendency_into() {}\n"),
        ];
        let table = SymbolTable::build(&files);
        let sites = call_sites(&files[0].tokens, 0, files[0].tokens.len() - 1);
        let site = sites.iter().find(|s| s.callee == "tendency_into").unwrap();
        let r = table.resolve(&files, 0, site);
        assert_eq!(r.len(), 1, "same-crate only");
        assert_eq!(table.defs[r[0]].file, 1);
        // The same name called from a crate with no local def: no global
        // fallback for methods.
        let files2 = vec![
            facts("crates/dist/src/d.rs", "dist", "fn work(s: &State) { s.tendency_into(); }\n"),
            facts("crates/sqg/src/b.rs", "sqg", "pub fn tendency_into() {}\n"),
            facts("crates/ensf/src/c.rs", "ensf", "pub fn tendency_into() {}\n"),
        ];
        let table2 = SymbolTable::build(&files2);
        let sites2 = call_sites(&files2[0].tokens, 0, files2[0].tokens.len() - 1);
        let site2 = sites2.iter().find(|s| s.callee == "tendency_into").unwrap();
        assert!(table2.resolve(&files2, 0, site2).is_empty());
    }

    #[test]
    fn core_maps_to_da_core_path_ident() {
        assert_eq!(crate_path_ident("core"), "da_core");
        assert_eq!(crate_path_ident("da-core"), "da_core");
        assert_eq!(crate_path_ident("ensf"), "ensf");
    }
}
