//! In-tree static analyzer for the sqg-da workspace.
//!
//! Enforces the invariants PRs 2–3 promised — bitwise determinism,
//! allocation-free hot loops, justified `unsafe`, dispatch-gated SIMD,
//! hang-free fault-aware collectives — as machine-checked lints over a
//! hand-rolled lexer, a lightweight structural parser, and (since v2) a
//! workspace-wide symbol table + call graph (no `syn`, no rustc internals,
//! no dependencies).
//!
//! Analysis runs in two phases:
//!
//! 1. **Per-file**: [`FileFacts::collect`] lexes and parses one file into
//!    owned facts (tokens, comments, structure, directives); the per-file
//!    lints in [`lints`] run over a borrowed [`FileCtx`] view of them.
//! 2. **Workspace**: [`passes`] builds a [`symbols::SymbolTable`] and a
//!    [`callgraph::CallGraph`] over *all* collected facts and runs the
//!    interprocedural passes (`no_alloc` reachability, collective-protocol
//!    safety, determinism dataflow).
//!
//! Run `cargo run -p analyzer -- check` from the workspace root; see
//! `crates/analyzer/README.md` for the lint table and the lexer's and
//! call-graph's limitations.

pub mod allow;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod passes;
pub mod sarif;
pub mod symbols;
pub mod workspace;

pub use diag::Diagnostic;

use allow::Directive;
use lexer::{Comment, Token};
use parse::Structure;
use std::collections::{BTreeMap, BTreeSet};

/// What role a file plays; several lints only apply to library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate library source (`src/` of a lib crate).
    Library,
    /// Integration tests / benches (`tests/`, `benches/`).
    Test,
    /// Binary targets (`src/bin/`, `main.rs`, the bench crate).
    Bin,
    /// Examples (`examples/`).
    Example,
}

/// A registered lint.
pub struct Lint {
    /// Kebab-case name used in diagnostics and `allow(...)` directives.
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
}

/// The lint registry. `lint-directive` (malformed/unknown directives) is
/// implicit and cannot be allowed.
pub const LINTS: &[Lint] = &[
    Lint {
        name: "unsafe-needs-safety-comment",
        desc: "every `unsafe` block/fn/impl must carry a `// SAFETY:` (or `# Safety` doc) justification",
    },
    Lint {
        name: "simd-needs-runtime-dispatch",
        desc: "#[target_feature]/_mm* intrinsics only in files wired through is_x86_feature_detected! dispatch",
    },
    Lint {
        name: "nondeterministic-api",
        desc: "no SystemTime/Instant/elapsed/unseeded RNG/HashMap in numeric crates (fft, linalg, stats, sqg, ensf, letkf)",
    },
    Lint {
        name: "no-alloc-in-hot-path",
        desc: "functions marked `// lint: no_alloc` must not allocate (Vec::new/push/to_vec/collect/clone/Box::new/...)",
    },
    Lint {
        name: "no-alloc-reachable",
        desc: "no function transitively reachable from a `// lint: no_alloc` fn may allocate (call-graph pass)",
    },
    Lint {
        name: "collective-protocol",
        desc: "dist/hpc collectives must use the fault-aware try_* variants, never inside rank-dependent branches",
    },
    Lint {
        name: "hash-float-fold",
        desc: "HashMap/HashSet iteration must not feed float accumulation (fold-order nondeterminism)",
    },
    Lint {
        name: "rng-stream-discipline",
        desc: "dist/ensf RNGs must derive from the stats::rng per-(particle,tile) stream API, never raw construction",
    },
    Lint {
        name: "float-exact-compare",
        desc: "no `==`/`!=` against float literals in library code (bitwise tests are exempt)",
    },
    Lint {
        name: "panic-in-library",
        desc: "unwrap/expect/panic! in non-test library code needs an `// INVARIANT:` comment or `# Panics` doc",
    },
];

/// True when `name` is a registered lint name.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.iter().any(|l| l.name == name)
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings, in source order.
    pub diags: Vec<Diagnostic>,
    /// Findings suppressed by `allow(...)` directives.
    pub suppressed: usize,
}

/// Which lint families apply to a file, derived from its crate.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Crate directory name (`ensf`, `dist`, ... or `sqg-da` for the root).
    pub crate_name: String,
    /// Bound by the determinism contract (`nondeterministic-api`).
    pub numeric: bool,
    /// Bound by the collective protocol (`dist`, `hpc`).
    pub comm: bool,
    /// Bound by RNG stream discipline (`dist`, `ensf`).
    pub rng_strict: bool,
    /// Bound by hash-iteration-order determinism (numeric ∪ `dist`, `hpc`,
    /// `core`).
    pub hash_order: bool,
}

impl Scope {
    /// Scope for a workspace crate, by crate directory name.
    pub fn for_crate(crate_name: &str) -> Scope {
        let numeric = workspace::NUMERIC_CRATES.contains(&crate_name);
        Scope {
            crate_name: crate_name.to_string(),
            numeric,
            comm: matches!(crate_name, "dist" | "hpc"),
            rng_strict: matches!(crate_name, "dist" | "ensf"),
            hash_order: numeric || matches!(crate_name, "dist" | "hpc" | "core"),
        }
    }

    /// Fixture-mode scope: every lint family applies.
    pub fn fixture() -> Scope {
        Scope {
            crate_name: "fixture".to_string(),
            numeric: true,
            comm: true,
            rng_strict: true,
            hash_order: true,
        }
    }
}

/// Everything the analyzer knows about one file, owned: the unit both the
/// per-file lints and the workspace passes consume.
pub struct FileFacts {
    /// Workspace-relative display path.
    pub rel: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Lint-family applicability.
    pub scope: Scope,
    /// Full source text.
    pub text: String,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Lexed comments.
    pub comments: Vec<Comment>,
    /// Structural facts (braces, test regions, fns).
    pub structure: Structure,
    /// `fn` body token ranges marked `// lint: no_alloc`, with fn names.
    pub no_alloc: Vec<(String, usize, usize)>,
    /// `(lint, first_line, last_line)` ranges covered by allow directives.
    pub allow_ranges: Vec<(String, u32, u32)>,
    /// Malformed/unknown directives, reported as `lint-directive` errors.
    pub directive_errors: Vec<(u32, String)>,
}

impl FileFacts {
    /// Lexes, parses and resolves directives for one file.
    pub fn collect(rel: &str, text: &str, kind: FileKind, scope: Scope) -> FileFacts {
        let lexed = lexer::lex(text);
        let structure = parse::analyze(&lexed.tokens);
        let directives = allow::parse_directives(&lexed.comments);
        let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();

        let mut no_alloc = Vec::new();
        let mut allow_ranges = Vec::new();
        let mut directive_errors: Vec<(u32, String)> = Vec::new();
        for d in &directives {
            match d {
                Directive::Allow { lint, line, trailing, .. } => {
                    if !is_known_lint(lint) {
                        directive_errors
                            .push((*line, format!("`allow({lint})` names an unknown lint")));
                        continue;
                    }
                    let range = if *trailing {
                        (*line, *line)
                    } else {
                        allow_coverage(&lexed.tokens, &structure, &token_lines, *line)
                    };
                    allow_ranges.push((lint.clone(), range.0, range.1));
                }
                Directive::NoAlloc { line } => {
                    match no_alloc_target(&lexed.tokens, &structure, &token_lines, *line) {
                        Some((name, a, b)) => no_alloc.push((name, a, b)),
                        None => directive_errors.push((
                            *line,
                            "`no_alloc` directive must directly precede a function with a body"
                                .to_string(),
                        )),
                    }
                }
                Directive::Malformed { line, why } => {
                    directive_errors.push((*line, format!("malformed lint directive: {why}")));
                }
            }
        }

        FileFacts {
            rel: rel.to_string(),
            kind,
            scope,
            text: text.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            structure,
            no_alloc,
            allow_ranges,
            directive_errors,
        }
    }

    /// Verbatim text of 1-based `line` (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.text.lines().nth(line as usize - 1).unwrap_or("").trim_end()
    }

    /// True when `line` is inside `#[cfg(test)]` / `#[test]` code or the
    /// file as a whole is not library code.
    pub fn in_test_context(&self, line: u32) -> bool {
        self.kind != FileKind::Library || self.structure.in_test_region(line)
    }

    /// True when an `allow(<lint>)` directive covers `line`.
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allow_ranges.iter().any(|(l, a, b)| l == lint && *a <= line && line <= *b)
    }
}

/// Everything the per-file lints need to know about one file: a borrowed
/// view over [`FileFacts`] plus derived comment/token indexes.
pub struct FileCtx<'a> {
    /// Workspace-relative display path.
    pub rel: &'a str,
    /// Role of the file.
    pub kind: FileKind,
    /// True for the numeric crates bound by the determinism contract.
    pub numeric: bool,
    /// Source lines (0-indexed storage, 1-indexed queries).
    pub lines: Vec<&'a str>,
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// Lexed comments.
    pub comments: &'a [Comment],
    /// Structural facts (braces, test regions, fns).
    pub structure: &'a Structure,
    /// `fn` body token ranges marked `// lint: no_alloc`, with fn names.
    pub no_alloc: &'a [(String, usize, usize)],
    allow_ranges: &'a [(String, u32, u32)],
    comment_by_end_line: BTreeMap<u32, usize>,
}

impl<'a> FileCtx<'a> {
    /// Borrows a lint-ready view of `facts`.
    pub fn new(facts: &'a FileFacts) -> FileCtx<'a> {
        let mut comment_by_end_line = BTreeMap::new();
        for (i, c) in facts.comments.iter().enumerate() {
            comment_by_end_line.insert(c.end_line, i);
        }
        FileCtx {
            rel: &facts.rel,
            kind: facts.kind,
            numeric: facts.scope.numeric,
            lines: facts.text.lines().collect(),
            tokens: &facts.tokens,
            comments: &facts.comments,
            structure: &facts.structure,
            no_alloc: &facts.no_alloc,
            allow_ranges: &facts.allow_ranges,
            comment_by_end_line,
        }
    }

    /// Verbatim text of 1-based `line` (empty if out of range).
    pub fn line_text(&self, line: u32) -> &'a str {
        self.lines.get(line as usize - 1).copied().unwrap_or("").trim_end()
    }

    /// True when `line` is inside `#[cfg(test)]` / `#[test]` code or the
    /// file as a whole is not library code.
    pub fn in_test_context(&self, line: u32) -> bool {
        self.kind != FileKind::Library || self.structure.in_test_region(line)
    }

    /// True when an `allow(<lint>)` directive covers `line`.
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allow_ranges.iter().any(|(l, a, b)| l == lint && *a <= line && line <= *b)
    }

    /// All comments that touch `line` (including trailing ones).
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line <= line && line <= c.end_line)
    }

    /// Concatenated text of the contiguous comment block directly above
    /// `line`, skipping attribute lines. Empty when there is none.
    pub fn comment_block_above(&self, line: u32) -> String {
        let mut acc: Vec<&str> = Vec::new();
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if let Some(&ci) = self.comment_by_end_line.get(&l) {
                let c = &self.comments[ci];
                if c.trailing {
                    break;
                }
                acc.push(&c.text);
                l = c.line.saturating_sub(1);
                continue;
            }
            if self.structure.attr_lines.contains(&l) {
                l -= 1;
                continue;
            }
            break;
        }
        acc.reverse();
        acc.join("\n")
    }

    /// Doc/comment block above the enclosing fn of `line`, if any.
    pub fn enclosing_fn_doc(&self, line: u32) -> String {
        match self.structure.enclosing_fn(line) {
            Some(f) => self.comment_block_above(f.header_line),
            None => String::new(),
        }
    }
}

/// Collects diagnostics, honoring `allow(...)` coverage.
pub struct Emitter<'c, 'a> {
    ctx: &'c FileCtx<'a>,
    /// Findings so far.
    pub diags: Vec<Diagnostic>,
    /// Count of findings suppressed by allow directives.
    pub suppressed: usize,
}

impl<'c, 'a> Emitter<'c, 'a> {
    fn new(ctx: &'c FileCtx<'a>) -> Self {
        Emitter { ctx, diags: Vec::new(), suppressed: 0 }
    }

    /// Emits one finding unless an allow directive covers it.
    pub fn emit(&mut self, lint: &'static str, line: u32, col: u32, message: String, help: &str) {
        if lint != "lint-directive" && self.ctx.allowed(lint, line) {
            self.suppressed += 1;
            return;
        }
        self.diags.push(Diagnostic {
            lint,
            file: self.ctx.rel.to_string(),
            line,
            col,
            message,
            snippet: self.ctx.line_text(line).to_string(),
            help: help.to_string(),
        });
    }
}

/// Runs the per-file lints (plus directive errors) over collected facts.
pub fn analyze_facts(facts: &FileFacts) -> FileReport {
    let ctx = FileCtx::new(facts);
    let mut em = Emitter::new(&ctx);
    for (line, msg) in &facts.directive_errors {
        em.emit(
            "lint-directive",
            *line,
            1,
            msg.clone(),
            "directives look like `// lint: allow(<lint>, reason=\"...\")` or `// lint: no_alloc`",
        );
    }
    lints::run_all(&ctx, &mut em);
    em.diags.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    FileReport { diags: em.diags, suppressed: em.suppressed }
}

/// Analyzes one file's source text with the per-file lints only. The
/// workspace passes (call-graph reachability, collective protocol,
/// determinism dataflow) additionally need [`passes::run`] over every file's
/// facts at once.
pub fn analyze_source(rel: &str, text: &str, kind: FileKind, numeric: bool) -> FileReport {
    let mut scope = Scope::for_crate("mem");
    scope.numeric = numeric;
    analyze_facts(&FileFacts::collect(rel, text, kind, scope))
}

/// Line range an own-line `allow` directive at `line` covers: the next code
/// line, extended to the whole brace block when that line opens one.
fn allow_coverage(
    tokens: &[Token],
    structure: &Structure,
    token_lines: &BTreeSet<u32>,
    line: u32,
) -> (u32, u32) {
    let Some(&next_line) = token_lines.iter().find(|&&l| l > line) else {
        return (line, line);
    };
    // INVARIANT: next_line came from token_lines, so a token on it exists.
    let idx = tokens.iter().position(|t| t.line == next_line).unwrap();
    match parse::body_block(tokens, &structure.brace_pair, idx) {
        Some((_, close)) => (next_line, tokens[close].line),
        None => (next_line, next_line),
    }
}

/// Resolves a `no_alloc` directive to the next `fn`'s name and body token
/// range. The fn keyword must start within 8 lines (attributes may
/// intervene), and the fn must have a body.
fn no_alloc_target(
    tokens: &[Token],
    structure: &Structure,
    token_lines: &BTreeSet<u32>,
    line: u32,
) -> Option<(String, usize, usize)> {
    let &next_line = token_lines.iter().find(|&&l| l > line)?;
    let idx = tokens.iter().position(|t| t.line == next_line)?;
    let f = structure
        .fns
        .iter()
        .filter(|f| f.kw_idx >= idx && f.header_line <= line + 8)
        .min_by_key(|f| f.kw_idx)?;
    let (a, b) = f.body_tokens?;
    Some((f.name.clone(), a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_report(src: &str) -> FileReport {
        analyze_source("mem.rs", src, FileKind::Library, true)
    }

    #[test]
    fn clean_source_is_clean() {
        let r = lib_report("/// Adds.\npub fn add(a: u64, b: u64) -> u64 { a + b }\n");
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn allow_suppresses_and_counts() {
        let src = "fn f(x: f64) -> bool {\n    // lint: allow(float-exact-compare, reason=\"exact sentinel\")\n    x == 0.0\n}\n";
        let r = lib_report(src);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn allow_on_fn_covers_whole_body() {
        let src = "// lint: allow(float-exact-compare, reason=\"exact sentinels throughout\")\nfn f(x: f64, y: f64) -> bool {\n    let a = x == 0.0;\n    let b = y != 1.0;\n    a && b\n}\n";
        let r = lib_report(src);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn unknown_lint_in_allow_is_error() {
        let src = "// lint: allow(no-such-lint, reason=\"typo\")\nfn f() {}\n";
        let r = lib_report(src);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].lint, "lint-directive");
    }

    #[test]
    fn test_code_is_exempt_from_panic_lint() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let r = lib_report(src);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn scope_families_follow_crate() {
        let s = Scope::for_crate("ensf");
        assert!(s.numeric && s.rng_strict && s.hash_order && !s.comm);
        let s = Scope::for_crate("hpc");
        assert!(!s.numeric && s.comm && s.hash_order && !s.rng_strict);
        let s = Scope::for_crate("dist");
        assert!(s.comm && s.rng_strict && s.hash_order && !s.numeric);
        let s = Scope::for_crate("telemetry");
        assert!(!s.numeric && !s.comm && !s.rng_strict && !s.hash_order);
    }
}
