//! Workspace file discovery and classification.

use crate::FileKind;
use std::path::{Path, PathBuf};

/// Crates bound by the determinism contract (`nondeterministic-api`).
pub const NUMERIC_CRATES: &[&str] = &["fft", "linalg", "stats", "sqg", "ensf", "letkf"];

/// One file selected for analysis.
#[derive(Debug, Clone)]
pub struct WorkFile {
    /// Absolute (or as-given) path.
    pub path: PathBuf,
    /// Root-relative display path with `/` separators.
    pub rel: String,
    /// Role of the file.
    pub kind: FileKind,
    /// True when the file belongs to a numeric crate.
    pub numeric: bool,
    /// Crate directory name (`ensf`, `dist`, ... or `sqg-da` for the root).
    pub crate_name: String,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Walks `root` for `.rs` files, skipping build output and the analyzer's
/// own seeded-violation fixtures. Deterministic (sorted) order.
pub fn discover(root: &Path) -> std::io::Result<Vec<WorkFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<WorkFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            // The fixture corpus is seeded violations; the workspace sweep
            // must not scan it (CI runs it separately, expecting failure).
            if rel_of(root, &path) == "crates/analyzer/fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_of(root, &path);
            out.push(classify(path, rel));
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classifies a file by its workspace-relative path.
pub fn classify(path: PathBuf, rel: String) -> WorkFile {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name: &str = match parts.as_slice() {
        ["crates", "shims", name, ..] => name,
        ["crates", name, ..] => name,
        _ => "sqg-da",
    };
    let numeric = NUMERIC_CRATES.contains(&crate_name);
    let kind = if parts.contains(&"tests") || parts.contains(&"benches") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"bin")
        || crate_name == "bench"
        || parts.last() == Some(&"main.rs")
        || parts.first() == Some(&"build.rs")
    {
        FileKind::Bin
    } else {
        FileKind::Library
    };
    // `crate_name` borrows `rel`; materialize it before `rel` moves in.
    WorkFile { path, crate_name: crate_name.to_string(), rel, kind, numeric }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of(rel: &str) -> (FileKind, bool) {
        let wf = classify(PathBuf::from(rel), rel.to_string());
        (wf.kind, wf.numeric)
    }

    #[test]
    fn classification() {
        assert_eq!(kind_of("crates/ensf/src/batch.rs"), (FileKind::Library, true));
        assert_eq!(kind_of("crates/ensf/tests/prop.rs"), (FileKind::Test, true));
        assert_eq!(kind_of("crates/telemetry/src/span.rs"), (FileKind::Library, false));
        assert_eq!(kind_of("crates/bench/src/bin/fig10.rs"), (FileKind::Bin, false));
        assert_eq!(kind_of("crates/shims/rayon/src/lib.rs"), (FileKind::Library, false));
        assert_eq!(kind_of("examples/quickstart.rs"), (FileKind::Example, false));
        assert_eq!(kind_of("src/lib.rs"), (FileKind::Library, false));
        assert_eq!(kind_of("tests/chaos.rs"), (FileKind::Test, false));
    }
}
