//! Seeded violation: wall-clock duration via `.elapsed()` (line 4).

pub fn secs(t0: std::time::Instant) -> f64 { // lint: allow(nondeterministic-api, reason="fixture isolates the elapsed extension")
    t0.elapsed().as_secs_f64()
}
