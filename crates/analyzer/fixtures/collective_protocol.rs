//! Seeded violation: panicking collective instead of `try_*` (line 4).

pub fn sync(comm: &Comm, x: &mut [f64]) {
    comm.allreduce_sum(x);
}
