//! Seeded violation: a flight-recorder style telemetry hot path marked
//! `// lint: no_alloc` that sneaks in a `format!` allocation (line 7).

// lint: no_alloc
pub fn flight_record(cycle: i64, label: &str, buf: &mut [u8; 48]) {
    // Rendering through format! allocates a String on every event.
    let rendered = format!("{cycle}:{label}");
    let n = rendered.len().min(buf.len());
    buf[..n].copy_from_slice(&rendered.as_bytes()[..n]);
}
