//! Seeded violation: collective inside a rank-dependent branch (line 5).

pub fn publish(comm: &Comm, rank: usize, x: &[f64]) {
    if rank == 0 {
        let _ = comm.try_allgather(x);
    }
}
