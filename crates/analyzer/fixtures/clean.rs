//! Fully clean file: the analyzer must report zero findings here, even
//! though it exercises an unsafe fn, a hot path, and a float tolerance.

/// Adds two numbers.
pub fn add(a: u64, b: u64) -> u64 {
    a + b
}

/// Scales a slice in place without allocating.
// lint: no_alloc
pub fn scale(xs: &mut [f64], k: f64) {
    for x in xs.iter_mut() {
        *x *= k;
    }
}

/// True when `x` is within `tol` of zero.
pub fn near_zero(x: f64, tol: f64) -> bool {
    x.abs() <= tol
}

/// Reads one byte through a raw pointer.
///
/// # Safety
/// `p` must point to a valid, initialized byte.
pub unsafe fn read_byte(p: *const u8) -> u8 {
    // SAFETY: validity contract forwarded from the caller.
    unsafe { *p }
}
