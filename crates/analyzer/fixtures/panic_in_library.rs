//! Seeded violation: undocumented panic path in library code (line 4).

pub fn first(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}
