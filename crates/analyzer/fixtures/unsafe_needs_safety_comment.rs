//! Seeded violation: `unsafe` with no SAFETY justification (line 4).

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
