//! Seeded violation: raw RNG construction bypassing the stream API (line 4).

pub fn make_rng() -> StdRng {
    StdRng::seed_from_u64(7)
}
