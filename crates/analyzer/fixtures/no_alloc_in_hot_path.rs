//! Seeded violation: heap allocation inside a `no_alloc` hot path (line 5).

// lint: no_alloc
pub fn hot(xs: &mut Vec<f64>, v: f64) {
    xs.push(v);
}
