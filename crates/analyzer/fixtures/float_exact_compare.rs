//! Seeded violation: exact float equality in library code (line 4).

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
