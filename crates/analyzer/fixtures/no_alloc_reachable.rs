//! Seeded violation: a `no_alloc` fn calls a helper that allocates (line 9).

// lint: no_alloc
pub fn hot(out: &mut [f64]) {
    fill(out);
}

pub fn fill(out: &mut [f64]) {
    let tmp: Vec<f64> = Vec::with_capacity(out.len());
    let _ = tmp;
}
