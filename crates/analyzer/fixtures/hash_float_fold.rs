//! Seeded violation: float accumulation in hash-map iteration order (line 4).

pub fn total(m: &HashMap<u32, f64>) -> f64 { // lint: allow(nondeterministic-api, reason="fixture isolates the fold-order lint")
    m.values().sum::<f64>()
}
