//! Cross-file regression seed: `hot` is clean in isolation — the violation
//! only appears when `util.rs` is analyzed alongside it (the per-file scan
//! of PR 4 misses this by construction).

// lint: no_alloc
pub fn hot(out: &mut [f64]) {
    scratch_helper(out);
}
