//! Allocating helper in another module: line 5 is only flagged when the
//! call graph connects it to `hot.rs`.

pub fn scratch_helper(out: &mut [f64]) {
    let tmp = out.to_vec();
    let _ = tmp;
}
