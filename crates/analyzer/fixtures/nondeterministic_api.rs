//! Seeded violation: wall-clock timing in a numeric crate (line 4).

pub fn elapsed_hint() -> u64 {
    let _t = std::time::Instant::now();
    0
}
