//! Seeded violation: SIMD intrinsic in a file with no runtime dispatch (line 4).

pub fn kernel() -> f64 {
    let _x = _mm256_setzero_pd();
    0.0
}
