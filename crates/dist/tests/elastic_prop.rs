//! Property test for the elastic checkpoint contract: a checkpoint
//! written by a run at `R` ranks restores **bit-identically** into a run
//! at any other rank count `R' ∈ 1..=8`.
//!
//! This is the invariant the rejoin protocol leans on — a rejoiner loads a
//! checkpoint written by whatever group survived, and the rank-count
//! invariance of the sharded analysis (see `tests/dist_determinism.rs` at
//! the workspace root) guarantees the resumed trajectory is the one the
//! survivors are computing. Two claims, both checked per case:
//!
//! 1. the checkpoint *file bytes* are identical no matter how many ranks
//!    wrote them, and
//! 2. resuming from it at `R'` ranks reproduces the uninterrupted
//!    reference trajectory bit for bit.

use da_core::osse::OsseConfig;
use da_core::resilience::{Checkpoint, CheckpointConfig};
use dist::{run_elastic_osse, run_elastic_osse_from, DistCycleConfig, ElasticCycleConfig};
use ensf::EnsfConfig;
use proptest::prelude::*;
use sqg::SqgParams;
use std::sync::{Mutex, OnceLock};

/// Cycles before the checkpoint boundary (`ck.cycle == SPLIT`).
const SPLIT: usize = 2;
/// Total cycles of the resumed experiment.
const TOTAL: usize = 4;

/// Reduced grid (`d = 512`, 8 tiles of 64), mirroring the elastic tests.
fn elastic_config(cycles: usize) -> ElasticCycleConfig {
    ElasticCycleConfig::clean(DistCycleConfig {
        osse: OsseConfig {
            params: SqgParams { n: 16, ..Default::default() },
            cycles,
            obs_sigma: 0.005,
            ens_size: 8,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        },
        ensf: EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        ..Default::default()
    })
}

/// `(cycle, mean-bits)` pairs plus the final ensemble bits.
type ReferenceBits = (Vec<(usize, Vec<u64>)>, Vec<u64>);

/// The uninterrupted single-rank reference trajectory, computed once.
fn reference() -> &'static ReferenceBits {
    static REF: OnceLock<ReferenceBits> = OnceLock::new();
    REF.get_or_init(|| {
        let full = run_elastic_osse(&elastic_config(TOTAL), 1).unwrap();
        let means = full
            .cycle_means
            .iter()
            .map(|(c, m)| (*c, m.iter().map(|v| v.to_bits()).collect()))
            .collect();
        let ens = full.ensemble.as_slice().iter().map(|v| v.to_bits()).collect();
        (means, ens)
    })
}

/// Checkpoint file bytes from the first case, for cross-`R` comparison.
static FIRST_BYTES: Mutex<Option<Vec<u8>>> = Mutex::new(None);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Write a cycle-2 checkpoint at `r_write` ranks, resume at `r_read`
    /// ranks, and demand the tail matches the uninterrupted reference.
    #[test]
    fn checkpoint_restores_bitwise_across_rank_counts(
        r_write in 1usize..=8,
        r_read in 1usize..=8,
    ) {
        let path = std::env::temp_dir().join(format!(
            "sqg_da_elastic_prop_{}_{r_write}_{r_read}.ckpt",
            std::process::id()
        ));
        let mut prefix = elastic_config(SPLIT);
        prefix.checkpoint = Some(CheckpointConfig { path: path.clone(), every: SPLIT });
        run_elastic_osse(&prefix, r_write).unwrap();

        let bytes = std::fs::read(&path).expect("prefix run wrote the checkpoint");
        let ck = Checkpoint::load(&path).expect("checkpoint parses");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(ck.cycle, SPLIT);

        // Claim 1: the file is byte-identical regardless of who wrote it.
        {
            let mut first = FIRST_BYTES.lock().unwrap_or_else(|e| e.into_inner());
            match first.as_ref() {
                None => *first = Some(bytes),
                Some(expected) => prop_assert_eq!(
                    &bytes,
                    expected,
                    "checkpoint bytes depend on the writing rank count {}",
                    r_write
                ),
            }
        }

        // Claim 2: the resumed tail is bitwise the reference trajectory.
        let resumed = run_elastic_osse_from(&elastic_config(TOTAL), r_read, &ck).unwrap();
        let (ref_means, ref_ens) = reference();
        prop_assert_eq!(resumed.cycle_means.len(), TOTAL - SPLIT);
        for (cycle, mean) in &resumed.cycle_means {
            let bits: Vec<u64> = mean.iter().map(|v| v.to_bits()).collect();
            let (_, expected) = ref_means
                .iter()
                .find(|(c, _)| c == cycle)
                .expect("reference covers every resumed cycle");
            prop_assert_eq!(
                &bits,
                expected,
                "cycle {} diverged (written at {}, resumed at {})",
                cycle, r_write, r_read
            );
        }
        let ens_bits: Vec<u64> =
            resumed.ensemble.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&ens_bits, ref_ens, "final ensemble diverged");
    }
}
