//! Cross-rank trace timelines for the distributed analysis.
//!
//! A traced variant of the [`crate::bench`] sequential driver: it runs the
//! same sharded-analysis protocol (same kernels, same per-step allgather,
//! same α–β comm pricing) over one or more cycles, but instead of folding
//! the measurements into scalars it maintains a **simulated per-rank
//! clock** and emits one [`telemetry::TraceEvent`] per phase — per-rank
//! `forecast` / `tile_partials` / `apply_step` / `finish` compute boxes on
//! each rank's lane, plus one `allgather` / `block_gather` comm box per
//! collective on a dedicated comm lane (tid = `ranks`), carrying the byte
//! count in its `args`.
//!
//! Because the comm durations come from the same pure α–β model the
//! scaling suite uses, the per-cycle comm totals in [`CycleBreakdown`]
//! reconcile **exactly** with `BENCH_scaling.json`'s `modeled_comm_secs`
//! for the same `(dim, tile, members, n_steps, ranks)` shape — the
//! `trace_report` bin asserts this.

use crate::analysis::{CommSpec, DistObs, ShardKernel};
use crate::shard::ShardPlan;
use da_core::{ForecastModel, SqgForecast};
use ensf::{EnsfConfig, TimeGrid};
use hpc::{collective_with_retry, Collective};
use sqg::SqgParams;
use stats::gaussian::fill_standard_normal;
use stats::rng::member_rng;
use stats::Ensemble;
use std::time::Instant;
use telemetry::{Json, TraceEvent};

/// Shape of a traced distributed run.
#[derive(Debug, Clone)]
pub struct TimelineSpec {
    /// State dimension.
    pub dim: usize,
    /// Tile width of the state partition.
    pub tile: usize,
    /// Ensemble size.
    pub members: usize,
    /// Simulated rank count.
    pub ranks: usize,
    /// Assimilation cycles to trace.
    pub cycles: usize,
    /// EnSF filter settings (steps, kernel, seed, relaxation).
    pub ensf: EnsfConfig,
    /// Seed of the synthetic forecast ensemble.
    pub seed: u64,
    /// Forecast window per cycle in simulated hours; `0.0` skips the
    /// forecast phase and traces the analysis alone (the scaling suite's
    /// shape). Requires `dim == 2n²` for some grid size `n` when positive.
    pub forecast_hours: f64,
}

/// Comm-vs-compute decomposition of one traced cycle.
#[derive(Debug, Clone)]
pub struct CycleBreakdown {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Replicated forecast seconds (identical on every rank; `0.0` when
    /// the forecast phase is disabled).
    pub forecast_secs: f64,
    /// Measured analysis compute seconds per rank.
    pub compute_secs: Vec<f64>,
    /// Modeled per-step allgather seconds (zero for a single rank). This
    /// is the quantity `BENCH_scaling.json` reports as `modeled_comm_secs`.
    pub analysis_comm_secs: f64,
    /// Modeled post-analysis block-gather seconds (zero for a single
    /// rank). The scaling suite times the analysis alone, so this is kept
    /// separate from [`Self::analysis_comm_secs`].
    pub gather_comm_secs: f64,
    /// Per-step exchanges modeled during the analysis (== `n_steps`).
    pub analysis_collectives: u64,
    /// Bytes exchanged by the per-step allgathers.
    pub analysis_bytes: u64,
    /// Bytes exchanged by the block gather (`members × dim × 8`).
    pub gather_bytes: u64,
    /// End-to-end critical path of the cycle: slowest-rank compute plus
    /// every synchronization the lanes wait on.
    pub critical_path_secs: f64,
}

impl CycleBreakdown {
    /// Serializes to a JSON object (used by the `trace_report` bin).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cycle", Json::from(self.cycle)),
            ("forecast_secs", Json::Num(self.forecast_secs)),
            (
                "compute_secs",
                Json::Arr(self.compute_secs.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("analysis_comm_secs", Json::Num(self.analysis_comm_secs)),
            ("gather_comm_secs", Json::Num(self.gather_comm_secs)),
            ("analysis_collectives", Json::from(self.analysis_collectives)),
            ("analysis_bytes", Json::from(self.analysis_bytes)),
            ("gather_bytes", Json::from(self.gather_bytes)),
            ("critical_path_secs", Json::Num(self.critical_path_secs)),
        ])
    }
}

/// Result of a traced run: the event stream plus per-cycle breakdowns.
#[derive(Debug, Clone)]
pub struct TimelineResult {
    /// Chrome trace events: compute boxes on lanes `0..ranks`, comm boxes
    /// on lane `ranks`.
    pub events: Vec<TraceEvent>,
    /// One breakdown per traced cycle.
    pub breakdown: Vec<CycleBreakdown>,
}

const US: f64 = 1e6;

fn compute_event(name: &str, rank: usize, start: f64, dur: f64, cycle: usize) -> TraceEvent {
    TraceEvent {
        name: name.to_string(),
        cat: "compute".to_string(),
        pid: 1,
        tid: rank as u32,
        ts_us: start * US,
        dur_us: dur * US,
        args: vec![("cycle".to_string(), Json::from(cycle))],
    }
}

fn comm_event(
    name: &str,
    comm_lane: usize,
    start: f64,
    dur: f64,
    cycle: usize,
    bytes: u64,
) -> TraceEvent {
    TraceEvent {
        name: name.to_string(),
        cat: "comm".to_string(),
        pid: 1,
        tid: comm_lane as u32,
        ts_us: start * US,
        dur_us: dur * US,
        args: vec![
            ("cycle".to_string(), Json::from(cycle)),
            ("bytes".to_string(), Json::from(bytes)),
        ],
    }
}

/// Runs a traced distributed experiment and returns its event stream.
///
/// The numerics are the production sharded-analysis path (the same
/// [`ShardKernel`] protocol [`crate::dist_analyze`] drives); compute boxes
/// carry *measured* per-rank seconds, comm boxes carry *modeled* α–β
/// seconds, and every collective is a synchronization point where all rank
/// clocks advance to the collective's end.
///
/// # Panics
/// Panics on invalid configuration (see [`ShardKernel::new`]) or when
/// `forecast_hours > 0` and `dim` is not `2n²` for an integer grid size.
pub fn trace_timeline(spec: &TimelineSpec) -> TimelineResult {
    let mut ensemble = Ensemble::zeros(spec.members, spec.dim);
    for m in 0..spec.members {
        let mut rng = member_rng(spec.seed, m);
        fill_standard_normal(&mut rng, ensemble.member_mut(m));
    }
    let y = vec![0.1; spec.dim];
    let obs = DistObs::Identity { sigma: 0.3 };
    let plan = ShardPlan::new(spec.dim, spec.tile, spec.ranks);
    let comm = CommSpec::clean(spec.ranks);
    let comm_lane = spec.ranks;
    let times = TimeGrid::LogSpaced.points(&spec.ensf.schedule, spec.ensf.n_steps);

    let mut model = (spec.forecast_hours > 0.0).then(|| {
        let n = ((spec.dim / 2) as f64).sqrt() as usize;
        assert_eq!(2 * n * n, spec.dim, "forecast phase needs dim = 2n², got {}", spec.dim);
        SqgForecast::perfect(SqgParams { n, ..Default::default() })
    });

    let mut events = Vec::new();
    let mut breakdown = Vec::new();
    let mut clocks = vec![0.0f64; spec.ranks];

    for cycle in 0..spec.cycles {
        let cycle_start = clocks[0];

        // Replicated forecast: every rank does identical work, so one
        // measurement stamps every lane.
        let mut forecast_secs = 0.0;
        if let Some(model) = model.as_mut() {
            let t0 = Instant::now();
            model.forecast_ensemble(&mut ensemble, spec.forecast_hours);
            forecast_secs = t0.elapsed().as_secs_f64();
            for (r, clock) in clocks.iter_mut().enumerate() {
                events.push(compute_event("forecast", r, *clock, forecast_secs, cycle));
                *clock += forecast_secs;
            }
        }

        let mut kernels: Vec<ShardKernel> = (0..spec.ranks)
            .map(|r| ShardKernel::new(&plan, r, &spec.ensf, cycle as u64, &ensemble, &y, &obs))
            .collect();
        let pj = kernels[0].partials_per_tile();
        let n_tiles = plan.n_tiles();
        let step_bytes = (n_tiles * pj * 8) as u64;
        let mut full = vec![0.0; n_tiles * pj];

        let mut compute_secs = vec![0.0f64; spec.ranks];
        let mut analysis_comm_secs = 0.0;
        let mut analysis_collectives = 0u64;

        for win in times.windows(2) {
            // Phase 1: per-rank score partials (measured independently).
            let mut offset = 0;
            for (r, kernel) in kernels.iter_mut().enumerate() {
                let t0 = Instant::now();
                let partials = kernel.tile_partials(win[0]);
                let dur = t0.elapsed().as_secs_f64();
                events.push(compute_event("tile_partials", r, clocks[r], dur, cycle));
                clocks[r] += dur;
                compute_secs[r] += dur;
                full[offset..offset + partials.len()].copy_from_slice(partials);
                offset += partials.len();
            }
            // The per-step exchange: a synchronization point — every lane
            // waits for the slowest, then pays the modeled allgather.
            analysis_collectives += 1;
            let sync = clocks.iter().cloned().fold(0.0, f64::max);
            if spec.ranks > 1 {
                // INVARIANT: a clean spec cannot exhaust the retry budget.
                let r = collective_with_retry(
                    &comm.topo,
                    Collective::AllGather,
                    spec.ranks,
                    step_bytes,
                    &comm.faults,
                    &comm.policy,
                )
                .expect("clean collective cannot fail");
                events.push(comm_event("allgather", comm_lane, sync, r.time, cycle, step_bytes));
                analysis_comm_secs += r.time;
                clocks.fill(sync + r.time);
            } else {
                clocks.fill(sync);
            }
            // Phase 2: per-rank block update.
            for (r, kernel) in kernels.iter_mut().enumerate() {
                let t0 = Instant::now();
                kernel.apply_step(win[0], win[1], &full);
                let dur = t0.elapsed().as_secs_f64();
                events.push(compute_event("apply_step", r, clocks[r], dur, cycle));
                clocks[r] += dur;
                compute_secs[r] += dur;
            }
        }

        // Spread relaxation, then reassemble the analysis blocks into the
        // replicated ensemble (as the production gather does).
        for (r, kernel) in kernels.into_iter().enumerate() {
            let t0 = Instant::now();
            let block = kernel.finish();
            let dur = t0.elapsed().as_secs_f64();
            events.push(compute_event("finish", r, clocks[r], dur, cycle));
            clocks[r] += dur;
            compute_secs[r] += dur;
            let (lo, hi) = plan.rank_range(r);
            let len = hi - lo;
            for p in 0..spec.members {
                ensemble.member_mut(p)[lo..hi].copy_from_slice(&block[p * len..(p + 1) * len]);
            }
        }

        // Block gather of the full analysis ensemble.
        let gather_bytes = (spec.members * spec.dim * 8) as u64;
        let sync = clocks.iter().cloned().fold(0.0, f64::max);
        let mut gather_comm_secs = 0.0;
        if spec.ranks > 1 {
            // INVARIANT: a clean spec cannot exhaust the retry budget.
            let r = collective_with_retry(
                &comm.topo,
                Collective::AllGather,
                spec.ranks,
                gather_bytes,
                &comm.faults,
                &comm.policy,
            )
            .expect("clean collective cannot fail");
            events.push(comm_event("block_gather", comm_lane, sync, r.time, cycle, gather_bytes));
            gather_comm_secs = r.time;
        }
        clocks.fill(sync + gather_comm_secs);

        breakdown.push(CycleBreakdown {
            cycle,
            forecast_secs,
            compute_secs,
            analysis_comm_secs,
            gather_comm_secs,
            analysis_collectives,
            analysis_bytes: analysis_collectives * step_bytes,
            gather_bytes,
            critical_path_secs: clocks[0] - cycle_start,
        });
    }

    TimelineResult { events, breakdown }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ranks: usize, cycles: usize) -> TimelineSpec {
        TimelineSpec {
            dim: 256,
            tile: 32,
            members: 6,
            ranks,
            cycles,
            ensf: EnsfConfig { n_steps: 6, seed: 1, ..Default::default() },
            seed: 7,
            forecast_hours: 0.0,
        }
    }

    #[test]
    fn comm_totals_match_the_scaling_driver_exactly() {
        // Same shape, same α–β model ⇒ the timeline's analysis comm must
        // equal measure_analysis's modeled_comm_secs to the bit.
        let s = spec(4, 1);
        let t = trace_timeline(&s);
        let m = crate::bench::measure_analysis(s.dim, s.tile, s.members, &s.ensf, s.ranks, s.seed);
        let b = &t.breakdown[0];
        assert_eq!(b.analysis_comm_secs, m.modeled_comm_secs);
        assert_eq!(b.analysis_collectives, m.stats.collectives);
        assert_eq!(b.analysis_bytes, m.stats.bytes);
    }

    #[test]
    fn single_rank_exchanges_nothing() {
        let t = trace_timeline(&spec(1, 2));
        assert_eq!(t.breakdown.len(), 2);
        for b in &t.breakdown {
            assert_eq!(b.analysis_comm_secs, 0.0);
            assert_eq!(b.gather_comm_secs, 0.0);
            assert_eq!(b.analysis_collectives, 6);
        }
        assert!(t.events.iter().all(|e| e.cat == "compute"), "no comm events on one rank");
    }

    #[test]
    fn lanes_are_well_formed() {
        let s = spec(3, 2);
        let t = trace_timeline(&s);
        // Compute events live on lanes 0..ranks, comm events on lane ranks.
        for e in &t.events {
            match e.cat.as_str() {
                "compute" => assert!((e.tid as usize) < s.ranks),
                "comm" => assert_eq!(e.tid as usize, s.ranks),
                other => panic!("unexpected category {other}"),
            }
            assert!(e.dur_us >= 0.0);
        }
        // Events on each lane are non-overlapping and time-ordered.
        for lane in 0..=s.ranks {
            let mut end = f64::NEG_INFINITY;
            for e in t.events.iter().filter(|e| e.tid as usize == lane) {
                assert!(e.ts_us >= end - 1e-6, "lane {lane} overlaps at {}", e.ts_us);
                end = e.ts_us + e.dur_us;
            }
        }
        // Critical path bounds the slowest rank's pure compute.
        for b in &t.breakdown {
            let slowest = b.compute_secs.iter().cloned().fold(0.0, f64::max);
            assert!(b.critical_path_secs + 1e-12 >= slowest);
        }
    }

    #[test]
    fn forecast_phase_stamps_every_lane() {
        let s = TimelineSpec { dim: 128, tile: 32, members: 4, forecast_hours: 6.0, ..spec(2, 1) };
        // dim = 128 = 2·8²: a valid SQG grid.
        let t = trace_timeline(&s);
        let forecasts: Vec<_> = t.events.iter().filter(|e| e.name == "forecast").collect();
        assert_eq!(forecasts.len(), 2, "one forecast box per rank lane");
        assert!(t.breakdown[0].forecast_secs > 0.0);
    }
}
