//! Fixed-tile partition of the state dimension across ranks.
//!
//! The determinism contract of the sharded analysis rests on one idea: the
//! unit of decomposition is a **tile** of fixed width, not "whatever block
//! a rank happens to own". The state dimension is cut into `⌈d / tile⌉`
//! tiles once, independently of the rank count; a rank owns a contiguous
//! run of tiles. Every floating-point reduction over the state dimension is
//! evaluated as (a) an intra-tile reduction — computed by exactly one rank,
//! with arithmetic that depends only on the tile — followed by (b) a fold
//! over per-tile partials in ascending tile order, replicated identically
//! on every rank. Neither part depends on *which* rank owned a tile, so
//! results are bitwise identical for any rank count (changing the tile
//! width, by contrast, reassociates the arithmetic and legitimately
//! changes low-order bits).

/// Contiguous-tile decomposition of a `dim`-dimensional state over ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    dim: usize,
    tile: usize,
    n_tiles: usize,
    /// Tile range `[t0, t1)` owned by each rank, contiguous and ascending.
    tile_ranges: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Cuts `dim` state components into tiles of width `tile` and assigns
    /// contiguous tile runs to `ranks` ranks (earlier ranks get the extra
    /// tile when the count does not divide evenly). Ranks beyond the tile
    /// count own an empty range.
    ///
    /// # Panics
    /// Panics when `dim`, `tile` or `ranks` is zero.
    pub fn new(dim: usize, tile: usize, ranks: usize) -> Self {
        assert!(dim > 0, "state dimension must be positive");
        assert!(tile > 0, "tile width must be positive");
        assert!(ranks > 0, "need at least one rank");
        let n_tiles = dim.div_ceil(tile);
        let base = n_tiles / ranks;
        let extra = n_tiles % ranks;
        let mut tile_ranges = Vec::with_capacity(ranks);
        let mut t0 = 0;
        for r in 0..ranks {
            let count = base + usize::from(r < extra);
            tile_ranges.push((t0, t0 + count));
            t0 += count;
        }
        ShardPlan { dim, tile, n_tiles, tile_ranges }
    }

    /// State dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tile width (the last tile may be narrower).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of tiles `⌈d / tile⌉`.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Number of ranks in the plan.
    pub fn ranks(&self) -> usize {
        self.tile_ranges.len()
    }

    /// Element range `[lo, hi)` of tile `t`.
    ///
    /// # Panics
    /// Panics when `t` is out of range.
    pub fn tile_bounds(&self, t: usize) -> (usize, usize) {
        assert!(t < self.n_tiles, "tile {t} out of range");
        (t * self.tile, self.dim.min((t + 1) * self.tile))
    }

    /// Tile range `[t0, t1)` owned by rank `r` (empty when `t0 == t1`).
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    pub fn rank_tiles(&self, r: usize) -> (usize, usize) {
        self.tile_ranges[r]
    }

    /// Element range `[lo, hi)` owned by rank `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    pub fn rank_range(&self, r: usize) -> (usize, usize) {
        let (t0, t1) = self.tile_ranges[r];
        if t0 == t1 {
            let lo = self.dim.min(t0 * self.tile);
            return (lo, lo);
        }
        (self.tile_bounds(t0).0, self.tile_bounds(t1 - 1).1)
    }

    /// Number of state elements owned by rank `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    pub fn rank_len(&self, r: usize) -> usize {
        let (lo, hi) = self.rank_range(r);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_dim_exactly_once() {
        for (dim, tile, ranks) in [(512, 64, 4), (513, 64, 8), (100, 7, 3), (8, 64, 4)] {
            let plan = ShardPlan::new(dim, tile, ranks);
            // Tile bounds tile the dimension.
            let mut next = 0;
            for t in 0..plan.n_tiles() {
                let (lo, hi) = plan.tile_bounds(t);
                assert_eq!(lo, next);
                assert!(hi > lo && hi <= dim);
                next = hi;
            }
            assert_eq!(next, dim);
            // Rank ranges are contiguous, ascending and cover the dimension.
            let mut elem = 0;
            for r in 0..ranks {
                let (lo, hi) = plan.rank_range(r);
                assert_eq!(lo, elem, "rank {r} range not contiguous");
                elem = hi;
            }
            assert_eq!(elem, dim);
        }
    }

    #[test]
    fn tile_layout_is_independent_of_rank_count() {
        // The partition into tiles (and hence every intra-tile reduction)
        // must not change with the rank count — only the ownership does.
        let reference = ShardPlan::new(8192, 64, 1);
        for ranks in [2, 3, 4, 8, 16, 200] {
            let plan = ShardPlan::new(8192, 64, ranks);
            assert_eq!(plan.n_tiles(), reference.n_tiles());
            for t in 0..plan.n_tiles() {
                assert_eq!(plan.tile_bounds(t), reference.tile_bounds(t));
            }
        }
    }

    #[test]
    fn more_ranks_than_tiles_leaves_trailing_ranks_empty() {
        let plan = ShardPlan::new(100, 64, 4); // 2 tiles, 4 ranks
        assert_eq!(plan.n_tiles(), 2);
        assert_eq!(plan.rank_len(0), 64);
        assert_eq!(plan.rank_len(1), 36);
        assert_eq!(plan.rank_len(2), 0);
        assert_eq!(plan.rank_len(3), 0);
        // Empty ranges still sit at valid offsets.
        assert_eq!(plan.rank_range(2), (100, 100));
    }

    #[test]
    fn extra_tiles_go_to_leading_ranks() {
        let plan = ShardPlan::new(7 * 64, 64, 3); // 7 tiles over 3 ranks
        assert_eq!(plan.rank_tiles(0), (0, 3));
        assert_eq!(plan.rank_tiles(1), (3, 5));
        assert_eq!(plan.rank_tiles(2), (5, 7));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = ShardPlan::new(64, 64, 0);
    }
}
