//! # dist — rank-parallel distributed DA cycling runtime
//!
//! The paper runs its EnSF+SQG cycling experiments across thousands of
//! Frontier GCDs (§IV). This crate reproduces that execution shape on the
//! workspace's simulated MPI communicator ([`hpc::mpi::Comm`]): a full
//! forecast → observe → analyze OSSE loop in which the EnSF analysis is
//! sharded **along the state dimension** — each rank owns a contiguous
//! block of state components and only ever updates its block.
//!
//! ## Determinism contract
//!
//! The headline property, enforced by `tests/dist_determinism.rs` at the
//! workspace root: for a fixed configuration the entire 10-cycle experiment
//! is **bitwise identical for any rank count**. Three ingredients:
//!
//! 1. **Tile-fixed reductions** ([`ShardPlan`]): every reduction over the
//!    state dimension (the score-normalization statistics `‖z − α x_j‖²`
//!    that feed the softmax weights) is computed as per-tile partials with
//!    tile-fixed arithmetic, then folded over tiles in ascending tile order
//!    identically on every rank. Tile geometry depends only on `(d, tile)`,
//!    never on the rank count.
//! 2. **Tile-keyed RNG streams** ([`ShardKernel`]): reverse-SDE noise is
//!    drawn from one stream per `(particle, tile)` pair, seeded from global
//!    indices, with a fixed consumption order — whichever rank owns a tile
//!    draws the same numbers.
//! 3. **Replicated control flow**: forecasts, observation handling, softmax
//!    weights and retry/shrink decisions ([`CommSpec`]) are evaluated
//!    identically on every rank from identical inputs, so no rank ever
//!    branches differently from its peers.
//!
//! Changing the *tile width* legitimately reassociates floating-point sums
//! and changes low-order bits; changing the *rank count* never does.
//!
//! ## Modules
//!
//! * [`shard`] — the fixed-tile partition of the state dimension.
//! * [`analysis`] — the sharded EnSF analysis kernel and the collective
//!   driver ([`dist_analyze`]).
//! * [`cycle`] — the distributed OSSE cycling runtime
//!   ([`run_dist_experiment`], [`run_osse`]).
//! * [`elastic`] — the fault-surviving variant: ULFM-style shrink on rank
//!   death, checkpoint-backed rejoin, and deadline-aware degraded analysis
//!   ([`run_elastic_experiment`], [`run_elastic_osse`]).
//! * [`bench`] — the sequential per-rank-timed driver behind the
//!   `scaling_suite` bench bin.
//! * [`timeline`] — the traced variant of the bench driver: per-rank
//!   Chrome trace-event streams with a comm-vs-compute breakdown, behind
//!   the `trace_report` bin.

#![warn(missing_docs)]

pub mod analysis;
pub mod bench;
pub mod cycle;
pub mod elastic;
pub mod shard;
pub mod timeline;

pub use analysis::{dist_analyze, CommSpec, CommStats, DistObs, ShardKernel};
pub use bench::{measure_analysis, ScalingMeasurement};
pub use cycle::{dist_obs_for, run_dist_experiment, run_osse, DistCycleConfig, DistRunResult};
pub use elastic::{
    modeled_analysis_secs, run_elastic_experiment, run_elastic_from, run_elastic_osse,
    run_elastic_osse_from, CycleMode, DeadlinePolicy, ElasticCounters, ElasticCycleConfig,
    ElasticOutcome, ElasticRunResult,
};
pub use shard::ShardPlan;
pub use timeline::{trace_timeline, CycleBreakdown, TimelineResult, TimelineSpec};

/// Why a distributed experiment could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A simulated collective exhausted its retry budget or lost every rank
    /// (propagated identically on all ranks: the retry model is a pure
    /// function of the scripted faults, so no cross-rank agreement protocol
    /// is needed to fail consistently).
    Collective(hpc::CollectiveError),
    /// A live MPI collective failed typed — a peer died mid-operation or
    /// revoked the epoch. The elastic runtime ([`elastic`]) catches this,
    /// shrinks the group, and retries; it is fatal only when every rank is
    /// gone or the error escapes a non-elastic driver.
    Mpi(hpc::MpiError),
    /// The configuration and nature run disagree (dimension mismatch,
    /// too-short nature run, invalid filter settings).
    Config(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Collective(e) => write!(f, "distributed collective failed: {e}"),
            DistError::Mpi(e) => write!(f, "MPI operation failed: {e}"),
            DistError::Config(msg) => write!(f, "invalid distributed experiment: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<hpc::CollectiveError> for DistError {
    fn from(e: hpc::CollectiveError) -> Self {
        DistError::Collective(e)
    }
}

impl From<hpc::MpiError> for DistError {
    fn from(e: hpc::MpiError) -> Self {
        DistError::Mpi(e)
    }
}
