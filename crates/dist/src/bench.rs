//! Sequential per-rank-timed driver for the scaling study.
//!
//! The container running CI has a single core, so actually threading the
//! ranks would time-slice them and hide any scaling signal. This driver
//! instead runs all ranks of one sharded analysis **sequentially**,
//! interleaving them step by step exactly as the real exchange would, and
//! measures each rank's compute in isolation — the same "each rank's wall
//! time is measured independently" idiom the Fig. 10 study in
//! [`ensf::parallel`] uses. The analysis wall time of an `R`-rank run is
//! then the slowest rank's compute (ranks proceed in lockstep between
//! allgathers); communication is priced separately through the α–β
//! collective model so the two contributions stay legible in
//! `BENCH_scaling.json`.

use crate::analysis::{CommStats, CommSpec, DistObs, ShardKernel};
use crate::shard::ShardPlan;
use ensf::{EnsfConfig, TimeGrid};
use hpc::{collective_with_retry, Collective};
use stats::gaussian::fill_standard_normal;
use stats::rng::member_rng;
use stats::Ensemble;
use std::time::Instant;

/// Timing of one sharded analysis at a fixed rank count.
#[derive(Debug, Clone)]
pub struct ScalingMeasurement {
    /// Simulated rank count.
    pub ranks: usize,
    /// State dimension.
    pub dim: usize,
    /// Ensemble size (particles == members).
    pub members: usize,
    /// Analysis wall time: the slowest rank's measured compute (seconds).
    pub analysis_secs: f64,
    /// Measured compute seconds per rank.
    pub per_rank_secs: Vec<f64>,
    /// Sum of all ranks' compute (the serial-equivalent work).
    pub total_cpu_secs: f64,
    /// Modeled allgather time across the whole analysis (α–β model;
    /// zero for a single rank, which exchanges nothing).
    pub modeled_comm_secs: f64,
    /// Collective accounting (counts the per-step partial exchanges).
    pub stats: CommStats,
}

/// Runs one sharded analysis with all ranks interleaved sequentially and
/// each rank's compute timed independently. The numerics are identical to
/// [`crate::dist_analyze`] (same kernels, same exchange protocol), so the
/// timing exercises exactly the production code path.
///
/// # Panics
/// Panics on invalid configuration (see [`ShardKernel::new`]).
pub fn measure_analysis(
    dim: usize,
    tile: usize,
    members: usize,
    config: &EnsfConfig,
    ranks: usize,
    seed: u64,
) -> ScalingMeasurement {
    // Synthetic forecast ensemble and observation: the kernels' cost is
    // data-independent, so any well-scaled input measures the real thing.
    let mut forecast = Ensemble::zeros(members, dim);
    for m in 0..members {
        let mut rng = member_rng(seed, m);
        fill_standard_normal(&mut rng, forecast.member_mut(m));
    }
    let y = vec![0.1; dim];
    let obs = DistObs::Identity { sigma: 0.3 };

    let plan = ShardPlan::new(dim, tile, ranks);
    let mut kernels: Vec<ShardKernel> = (0..ranks)
        .map(|r| ShardKernel::new(&plan, r, config, 0, &forecast, &y, &obs))
        .collect();
    let times = TimeGrid::LogSpaced.points(&config.schedule, config.n_steps);
    let pj = kernels[0].partials_per_tile();
    let n_tiles = plan.n_tiles();
    let exchanged_bytes = (n_tiles * pj * 8) as u64;
    let spec = CommSpec::clean(ranks);

    let mut per_rank_secs = vec![0.0; ranks];
    let mut stats = CommStats::default();
    let mut full = vec![0.0; n_tiles * pj];

    for win in times.windows(2) {
        // Phase 1: every rank computes its tile partials (timed per rank).
        let mut offset = 0;
        for (r, kernel) in kernels.iter_mut().enumerate() {
            let t0 = Instant::now();
            let partials = kernel.tile_partials(win[0]);
            per_rank_secs[r] += t0.elapsed().as_secs_f64();
            full[offset..offset + partials.len()].copy_from_slice(partials);
            offset += partials.len();
        }
        debug_assert_eq!(offset, full.len());
        // The exchange: modeled, not executed (ranks share an address
        // space here). Per-rank counters mirror the production path.
        stats.collectives += 1;
        stats.bytes += exchanged_bytes;
        if ranks > 1 {
            // INVARIANT: a clean spec cannot exhaust the retry budget.
            let r = collective_with_retry(
                &spec.topo,
                Collective::AllGather,
                ranks,
                exchanged_bytes,
                &spec.faults,
                &spec.policy,
            )
            .expect("clean collective cannot fail");
            stats.attempts += u64::from(r.attempts);
            stats.modeled_comm_secs += r.time;
        } else {
            stats.attempts += 1;
        }
        // Phase 2: every rank applies the step to its block (timed).
        for (r, kernel) in kernels.iter_mut().enumerate() {
            let t0 = Instant::now();
            kernel.apply_step(win[0], win[1], &full);
            per_rank_secs[r] += t0.elapsed().as_secs_f64();
        }
    }
    // Spread relaxation, timed as part of each rank's compute.
    for (r, kernel) in kernels.into_iter().enumerate() {
        let t0 = Instant::now();
        let _block = kernel.finish();
        per_rank_secs[r] += t0.elapsed().as_secs_f64();
    }

    let analysis_secs = per_rank_secs.iter().cloned().fold(0.0, f64::max);
    let total_cpu_secs = per_rank_secs.iter().sum();
    ScalingMeasurement {
        ranks,
        dim,
        members,
        analysis_secs,
        per_rank_secs,
        total_cpu_secs,
        modeled_comm_secs: stats.modeled_comm_secs,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_shapes_and_accounting() {
        let config = EnsfConfig { n_steps: 6, seed: 1, ..Default::default() };
        let m = measure_analysis(256, 32, 6, &config, 4, 7);
        assert_eq!(m.ranks, 4);
        assert_eq!(m.per_rank_secs.len(), 4);
        assert!(m.per_rank_secs.iter().all(|&s| s >= 0.0));
        assert!(m.analysis_secs <= m.total_cpu_secs + 1e-12);
        assert_eq!(m.stats.collectives, 6, "one exchange per SDE step");
        assert!(m.modeled_comm_secs > 0.0);
    }

    #[test]
    fn single_rank_has_no_comm_cost() {
        let config = EnsfConfig { n_steps: 4, seed: 1, ..Default::default() };
        let m = measure_analysis(128, 32, 4, &config, 1, 7);
        assert_eq!(m.modeled_comm_secs, 0.0);
        assert_eq!(m.per_rank_secs.len(), 1);
    }

    #[test]
    fn sequential_driver_matches_threaded_runtime_bitwise() {
        // The bench driver must time exactly the production numerics: its
        // reassembled analysis equals dist_analyze's for the same inputs.
        use hpc::mpi::run_world;
        let (dim, members) = (96, 5);
        let config = EnsfConfig { n_steps: 8, seed: 13, ..Default::default() };
        let mut forecast = Ensemble::zeros(members, dim);
        for m in 0..members {
            let mut rng = member_rng(7, m);
            fill_standard_normal(&mut rng, forecast.member_mut(m));
        }
        let y = vec![0.1; dim];
        let obs = DistObs::Identity { sigma: 0.3 };
        let plan = ShardPlan::new(dim, 16, 3);

        // Sequential (the bench path, minus timing).
        let times = TimeGrid::LogSpaced.points(&config.schedule, config.n_steps);
        let mut kernels: Vec<ShardKernel> = (0..3)
            .map(|r| ShardKernel::new(&plan, r, &config, 0, &forecast, &y, &obs))
            .collect();
        for win in times.windows(2) {
            let mut full = Vec::new();
            for kernel in kernels.iter_mut() {
                full.extend_from_slice(kernel.tile_partials(win[0]));
            }
            for kernel in kernels.iter_mut() {
                kernel.apply_step(win[0], win[1], &full);
            }
        }
        let sequential: Vec<Vec<f64>> = kernels.into_iter().map(|k| k.finish()).collect();

        // Threaded over the simulated communicator.
        let threaded = run_world(3, |comm| {
            let mut stats = CommStats::default();
            crate::dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats)
                .unwrap()
        });
        assert_eq!(sequential, threaded);
    }
}
