//! State-dimension-sharded EnSF analysis.
//!
//! One analysis integrates the reverse-time SDE exactly like the serial
//! filter ([`ensf::Ensf`]) but with the state dimension cut into fixed
//! tiles ([`ShardPlan`]): each rank holds only its contiguous block of
//! every particle and of the forecast ensemble. Per SDE step the only
//! cross-rank coupling is the softmax normalization of the Monte-Carlo
//! score weights, which needs the full squared distances
//! `‖z_p − α x_j‖² = Σ_tiles ‖z_p − α x_j‖²_tile`. Each rank computes the
//! partials for its tiles ([`ShardKernel::tile_partials`]), an allgather
//! makes every rank's partials visible everywhere, and every rank folds
//! them in ascending tile order ([`ShardKernel::apply_step`]) — identical
//! arithmetic regardless of who owned which tile, hence bitwise identical
//! results for any rank count. Everything else in the step (drift, noise,
//! likelihood pull, spread relaxation) is elementwise or per-variable and
//! needs no communication at all.
//!
//! The per-tile arithmetic is *not* bitwise identical to the serial filter
//! (the serial kernels reduce over the full dimension in one chain; the
//! sharded kernel reassociates at tile boundaries, and draws its SDE noise
//! from per-`(particle, tile)` streams instead of per-particle streams).
//! It is a third kernel with the same reassociation-level agreement the
//! `Reference`/`Batched` pair already share, verified in the tests below.
//!
//! With [`AnalysisMethod::FlowMatching`] the same sharded score machinery
//! drives the deterministic probability-flow (DDIM) update instead of the
//! stochastic step: no per-step noise draws at all, so the rank-invariance
//! argument reduces entirely to the fixed-order tile fold, and the
//! deadline ladder can degrade `n_steps` far more aggressively (the DDIM
//! map is mean-exact at any step count for linear-Gaussian problems).

use crate::shard::ShardPlan;
use crate::DistError;
use ensf::{
    relax_spread, AnalysisMethod, ArctanObs, DiffusionSchedule, EnsfConfig, IdentityObs,
    ObservationOperator, ScoreKernel, TimeGrid,
};
use hpc::mpi::Comm;
use hpc::{collective_with_retry, Collective, RankFault, RetryPolicy, Topology};
use linalg::gemm::{matmul_abt_into, matmul_slices_affine_into, row_sq_norms};
use linalg::vector::{axpy, scale_add};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use stats::gaussian::{fill_standard_normal, NormalSampler};
use stats::rng::{seeded, split_seed};
use stats::softmax::softmax_in_place;
use stats::Ensemble;

/// Observation model of the distributed runtime.
///
/// The sharded analysis updates each state block independently, so the
/// observation operator must restrict cleanly to a contiguous block: the
/// variants here are exactly the componentwise operators (the paper's SQG
/// setting uses `h = I`; arctan is the EnSF papers' nonlinear stress
/// test; [`DistObs::Masked`] composes either base with a partial-network
/// mask, which is still componentwise — each tile's share of the mask is
/// a pure function of the *global* tile bounds and the cycle, so the
/// partition stays rank-layout invariant). Operators that couple state
/// components across tiles (integrals, convolutions) would need an
/// observation-space exchange and are out of scope for this runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistObs {
    /// Fully observed state, `h = I`, error std `sigma`.
    Identity {
        /// Per-component observation error standard deviation.
        sigma: f64,
    },
    /// Componentwise `h(x) = arctan(gain · x)`, error std `sigma`.
    Arctan {
        /// Per-component observation error standard deviation.
        sigma: f64,
        /// Saturation gain γ of `arctan(γ x)`.
        gain: f64,
    },
    /// Partially observed network: `base` applied at the components `mask`
    /// leaves visible for the analysis cycle. The observation vector holds
    /// only the observed components (ascending global index); guidance acts
    /// only there, and masked components evolve by score-driven diffusion.
    Masked {
        /// Per-component observation error standard deviation.
        sigma: f64,
        /// Componentwise base operator applied at observed components.
        base: da_core::ObsOperatorKind,
        /// Which components the network observes (cycle-indexed).
        mask: da_core::MaskKind,
    },
}

impl DistObs {
    /// Observation error standard deviation.
    pub fn sigma(&self) -> f64 {
        match *self {
            DistObs::Identity { sigma }
            | DistObs::Arctan { sigma, .. }
            | DistObs::Masked { sigma, .. } => sigma,
        }
    }

    /// Expected observation-vector length for a `dim`-dimensional state at
    /// analysis cycle `cycle` (masked networks shrink it to the observed
    /// components).
    pub fn obs_len(&self, dim: usize, cycle: u64) -> usize {
        match self {
            DistObs::Masked { mask, .. } => mask.obs_dim(dim, cycle),
            _ => dim,
        }
    }

    /// The operator restricted to a `len`-component block. Because the
    /// dense variants are elementwise, the restriction is just the same
    /// operator on a smaller dimension.
    ///
    /// # Panics
    /// Panics for [`DistObs::Masked`], whose restriction needs the global
    /// tile bounds (see [`ShardKernel::new`]).
    pub fn block_operator(&self, len: usize) -> Box<dyn ObservationOperator> {
        match *self {
            DistObs::Identity { sigma } => Box::new(IdentityObs::new(len, sigma)),
            DistObs::Arctan { sigma, gain } => Box::new(ArctanObs::with_gain(len, sigma, gain)),
            DistObs::Masked { .. } => {
                panic!("masked operators restrict per global tile, not per bare length")
            }
        }
    }

    /// Uniform squared observation Jacobian, if one exists (see
    /// [`ObservationOperator::constant_jacobian_sq`]). Masked networks have
    /// a per-component on/off pattern, so they never admit one.
    pub fn constant_jacobian_sq(&self) -> Option<f64> {
        match self {
            DistObs::Identity { .. } => Some(1.0),
            DistObs::Arctan { .. } | DistObs::Masked { .. } => None,
        }
    }
}

/// Simulated-network specification for the distributed runtime: the
/// machine topology plus scripted rank faults, driving
/// [`hpc::collective_with_retry`] for every analysis collective.
///
/// The retry model is a *pure function* of this specification, so every
/// rank evaluates the same retry/shrink/abort decision locally — a failed
/// collective surfaces as the same [`DistError::Collective`] on all ranks
/// with no extra agreement round.
#[derive(Debug, Clone)]
pub struct CommSpec {
    /// Machine topology for the α–β collective cost model.
    pub topo: Topology,
    /// Scripted rank faults (transient retries and ULFM-style shrinks).
    pub faults: Vec<RankFault>,
    /// Retry/backoff policy.
    pub policy: RetryPolicy,
}

impl CommSpec {
    /// A clean Frontier-like network for `ranks` ranks: no faults, default
    /// retry policy.
    pub fn clean(ranks: usize) -> Self {
        CommSpec {
            topo: Topology::frontier(ranks.max(1)),
            faults: Vec::new(),
            policy: RetryPolicy::default(),
        }
    }
}

/// Per-rank accounting of the analysis collectives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Collectives executed (one allgather per SDE step plus one block
    /// gather per analysis).
    pub collectives: u64,
    /// Total attempts across all modeled collectives (equals
    /// `collectives` when no fault was scripted).
    pub attempts: u64,
    /// Modeled wall time of the collectives (α–β cost model plus retry
    /// backoffs); `0.0` without a [`CommSpec`].
    pub modeled_comm_secs: f64,
    /// Bytes moved through the collectives (payload, per rank).
    pub bytes: u64,
}

/// Geometry of one locally-owned tile.
struct LocalTile {
    /// Global tile index (the fold key).
    global: usize,
    /// Offset of the tile inside the rank's block.
    off: usize,
    /// Tile width in state components.
    len: usize,
}

/// One rank's share of a single sharded EnSF analysis, exposed stepwise so
/// different drivers can interleave the collective exchange differently:
/// the MPI-threaded runtime ([`dist_analyze`]) exchanges through
/// [`Comm::allgather_concat`], while the scaling bench
/// ([`crate::bench::measure_analysis`]) runs all ranks sequentially and
/// times each rank's compute in isolation.
///
/// Protocol per SDE step `t → t_next`:
/// 1. every rank calls [`tile_partials`](Self::tile_partials)`(t)`;
/// 2. the driver concatenates all ranks' partials in rank order (which is
///    ascending-tile order, since ranks own ascending contiguous runs);
/// 3. every rank calls [`apply_step`](Self::apply_step) with the full
///    partial vector.
///
/// After the last step, [`finish`](Self::finish) applies the spread
/// relaxation and returns the rank's analysis block.
pub struct ShardKernel {
    tiles: Vec<LocalTile>,
    n_tiles: usize,
    local_len: usize,
    members: usize,
    batch_len: usize,
    schedule: DiffusionSchedule,
    kernel: ScoreKernel,
    method: AnalysisMethod,
    spread_relaxation: f64,
    /// Forecast mini-batch, per local tile: `J x len` blocks back to back
    /// in batch order (the GEMM `B` operand of each tile).
    x_tiles: Vec<f64>,
    /// Offset of each local tile's block inside `x_tiles`.
    x_off: Vec<usize>,
    /// `‖x_j‖²` per (local tile, batch member) — batched kernel only.
    xnorm: Vec<f64>,
    /// Full forecast block (`M x local_len`) for the spread relaxation.
    f_block: Vec<f64>,
    /// Per-component prior ensemble variance over the score mini-batch
    /// (`local_len`; flow-matching only, empty for the SDE). Per-variable
    /// and batch-ordered, so identical for any rank layout.
    prior_var: Vec<f64>,
    /// Particle block, `P x local_len` row-major.
    z: Vec<f64>,
    /// One RNG per `(particle, local tile)`, indexed `p * n_local + lt`.
    rngs: Vec<StdRng>,
    sampler: NormalSampler,
    /// Local observation slice per local tile. Dense operators slice the
    /// state-length vector at the tile bounds; masked operators hold each
    /// tile's (possibly empty) run of observed-component values.
    y_tiles: Vec<Vec<f64>>,
    /// Observation operator restricted to each local tile.
    ops: Vec<Box<dyn ObservationOperator>>,
    obs: DistObs,
    sigma_obs_sq: f64,
    // Scratch (allocated once; the step loop is allocation-free).
    partials: Vec<f64>,
    weights: Vec<f64>,
    z_tile: Vec<f64>,
    s_tile: Vec<f64>,
    gram: Vec<f64>,
    znorm: Vec<f64>,
    lik: Vec<f64>,
    jsq: Vec<f64>,
    /// Tweedie denoised estimate `x̂` for one (particle, tile) row
    /// (flow-matching only).
    xh: Vec<f64>,
}

/// RNG stream for one `(particle, tile)` pair of one analysis cycle. Keyed
/// by *global* indices so whichever rank owns a tile draws the same
/// numbers — the noise analogue of the tile-fixed reductions.
fn tile_rng(cycle_seed: u64, particle: usize, tile: usize) -> StdRng {
    let particle_seed = split_seed(cycle_seed, 0xD157_0000_u64.wrapping_add(particle as u64));
    seeded(split_seed(particle_seed, tile as u64))
}

impl ShardKernel {
    /// Prepares rank `rank`'s share of one analysis: gathers the local
    /// forecast tiles, derives the replicated mini-batch, and fills the
    /// particle block with the initial `N(0, I)` draw from the tile-keyed
    /// streams.
    ///
    /// `cycle` is the analysis-cycle counter; together with `config.seed`
    /// it pins every RNG stream (the same contract as [`ensf::Ensf`]).
    ///
    /// # Panics
    /// Panics when the forecast dimension or observation length disagrees
    /// with the plan, when `rank` is out of range, or when the filter
    /// configuration is invalid.
    pub fn new(
        plan: &ShardPlan,
        rank: usize,
        config: &EnsfConfig,
        cycle: u64,
        forecast: &Ensemble,
        y: &[f64],
        obs: &DistObs,
    ) -> Self {
        config.validate().expect("invalid EnSF configuration");
        assert_eq!(forecast.dim(), plan.dim(), "forecast dimension mismatch");
        assert_eq!(y.len(), obs.obs_len(plan.dim(), cycle), "observation length mismatch");
        assert!(rank < plan.ranks(), "rank {rank} out of range");
        let members = forecast.members();
        assert!(members > 0, "need at least one forecast member");

        let cycle_seed = split_seed(config.seed, cycle.wrapping_add(0x5151));
        // Mini-batch selection: replicated on every rank (same derivation
        // as the serial filter, so it is a pure function of (seed, cycle)).
        let batch: Vec<usize> = match config.minibatch {
            Some(j) if j < members => {
                let mut idx: Vec<usize> = (0..members).collect();
                let mut rng = seeded(split_seed(cycle_seed, 0xBA7C4));
                idx.shuffle(&mut rng);
                idx.truncate(j);
                idx
            }
            _ => (0..members).collect(),
        };
        let batch_len = batch.len();

        let (t0, t1) = plan.rank_tiles(rank);
        let (rank_lo, rank_hi) = plan.rank_range(rank);
        let local_len = rank_hi - rank_lo;
        let mut tiles = Vec::with_capacity(t1 - t0);
        for t in t0..t1 {
            let (lo, hi) = plan.tile_bounds(t);
            tiles.push(LocalTile { global: t, off: lo - rank_lo, len: hi - lo });
        }
        let n_local = tiles.len();
        let tile_max = tiles.iter().map(|t| t.len).max().unwrap_or(0);

        // Gather the mini-batch tiles (GEMM operands) and the full forecast
        // block (relaxation statistics).
        let mut x_tiles = Vec::with_capacity(batch_len * local_len);
        let mut x_off = Vec::with_capacity(n_local);
        for tile in &tiles {
            x_off.push(x_tiles.len());
            for &j in &batch {
                let row = forecast.member(j);
                x_tiles.extend_from_slice(&row[rank_lo + tile.off..rank_lo + tile.off + tile.len]);
            }
        }
        let mut xnorm = vec![0.0; n_local * batch_len];
        if config.kernel == ScoreKernel::Batched {
            for (lt, tile) in tiles.iter().enumerate() {
                row_sq_norms(
                    &x_tiles[x_off[lt]..x_off[lt] + batch_len * tile.len],
                    batch_len,
                    tile.len,
                    &mut xnorm[lt * batch_len..(lt + 1) * batch_len],
                );
            }
        }
        let mut f_block = Vec::with_capacity(members * local_len);
        for m in 0..members {
            f_block.extend_from_slice(&forecast.member(m)[rank_lo..rank_hi]);
        }
        // Flow-matching guidance needs the per-component prior variance of
        // the score mini-batch. `f_block` is member-major over the local
        // block, so the serial helper applies directly; per-variable
        // statistics in batch order are bitwise rank-layout invariant.
        let prior_var = match config.method {
            AnalysisMethod::FlowMatching => {
                let mut var = ensf::batch_variance(&f_block, members, local_len, &batch);
                // Variance shrinkage is applied per *global* tile — the
                // tile grid is fixed by the plan regardless of how tiles
                // are grouped onto ranks, so the smoothed gains stay
                // bitwise rank-layout invariant (the serial path smooths
                // over the whole state instead; the two agree only
                // statistically, like everything else across the runtimes).
                for tile in &tiles {
                    ensf::smooth_variance(
                        &mut var[tile.off..tile.off + tile.len],
                        config.variance_smoothing,
                    );
                }
                var
            }
            AnalysisMethod::ReverseSde => Vec::new(),
        };

        // Initial N(0, I) fill from the tile-keyed streams, in (particle,
        // tile) order; each stream is consumed only by its own tile, so the
        // fill order does not couple streams.
        let mut z = vec![0.0; members * local_len];
        let mut rngs = Vec::with_capacity(members * n_local);
        for p in 0..members {
            for tile in &tiles {
                let mut rng = tile_rng(cycle_seed, p, tile.global);
                let row = &mut z[p * local_len + tile.off..p * local_len + tile.off + tile.len];
                fill_standard_normal(&mut rng, row);
                rngs.push(rng);
            }
        }

        // Per-tile observation slices and operators. Both are pure
        // functions of the *global* tile bounds (and, for masked networks,
        // the cycle), so whichever rank owns a tile builds identical bits.
        let (y_tiles, ops): (Vec<Vec<f64>>, Vec<Box<dyn ObservationOperator>>) = match *obs {
            DistObs::Masked { sigma, base, mask } => {
                let observed = mask.observed_indices(plan.dim(), cycle);
                tiles
                    .iter()
                    .map(|tile| {
                        let lo = rank_lo + tile.off;
                        let hi = lo + tile.len;
                        // The mask's observed indices are ascending, so a
                        // tile's share of the observation vector is the
                        // contiguous run of entries whose index falls in
                        // the tile — positioned by a global count, never
                        // by the rank layout.
                        let a = observed.partition_point(|&i| i < lo);
                        let b = observed.partition_point(|&i| i < hi);
                        let local: Vec<usize> = observed[a..b].iter().map(|&i| i - lo).collect();
                        let op: Box<dyn ObservationOperator> = match base {
                            da_core::ObsOperatorKind::Identity => {
                                Box::new(ensf::MaskedObs::identity(tile.len, local, sigma))
                            }
                            da_core::ObsOperatorKind::Arctan { gain } => {
                                Box::new(ensf::MaskedObs::arctan(tile.len, local, sigma, gain))
                            }
                        };
                        (y[a..b].to_vec(), op)
                    })
                    .unzip()
            }
            _ => tiles
                .iter()
                .map(|tile| {
                    let lo = rank_lo + tile.off;
                    (y[lo..lo + tile.len].to_vec(), obs.block_operator(tile.len))
                })
                .unzip(),
        };
        let sigma = obs.sigma();

        ShardKernel {
            n_tiles: plan.n_tiles(),
            local_len,
            members,
            batch_len,
            schedule: config.schedule,
            kernel: config.kernel,
            method: config.method,
            spread_relaxation: config.spread_relaxation,
            x_tiles,
            x_off,
            xnorm,
            f_block,
            prior_var,
            z,
            rngs,
            sampler: NormalSampler::new(),
            y_tiles,
            ops,
            obs: *obs,
            sigma_obs_sq: sigma * sigma,
            partials: vec![0.0; n_local * members * batch_len],
            weights: vec![0.0; members * batch_len],
            z_tile: vec![0.0; members * tile_max],
            s_tile: vec![0.0; members * tile_max],
            gram: vec![0.0; members * batch_len],
            znorm: vec![0.0; members],
            lik: vec![0.0; tile_max],
            jsq: vec![0.0; tile_max],
            xh: vec![0.0; tile_max],
            tiles,
        }
    }

    /// Length of one tile's partial block (`P · J`): the full exchanged
    /// vector has `n_tiles` such blocks in ascending tile order.
    pub fn partials_per_tile(&self) -> usize {
        self.members * self.batch_len
    }

    /// Total number of tiles in the plan (all ranks).
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Number of state components this rank owns.
    pub fn local_len(&self) -> usize {
        self.local_len
    }

    /// Computes this rank's per-tile squared-distance partials
    /// `‖z_p − α_t x_j‖²_tile` at pseudo-time `t`, tile-major
    /// (`partials[lt · P·J + p · J + j]`, local tiles ascending). The
    /// arithmetic depends only on the tile contents, never on the rank
    /// layout.
    // lint: no_alloc
    pub fn tile_partials(&mut self, t: f64) -> &[f64] {
        let (p_n, j_n) = (self.members, self.batch_len);
        let alpha = self.schedule.alpha(t);
        let alpha_sq = alpha * alpha;
        for (lt, tile) in self.tiles.iter().enumerate() {
            let x_block = &self.x_tiles[self.x_off[lt]..self.x_off[lt] + j_n * tile.len];
            let out = &mut self.partials[lt * p_n * j_n..(lt + 1) * p_n * j_n];
            match self.kernel {
                ScoreKernel::Reference => {
                    // Per-(particle, member) strided squared distance — the
                    // ScoreEstimator inner loop restricted to one tile.
                    for p in 0..p_n {
                        let zrow = &self.z
                            [p * self.local_len + tile.off..p * self.local_len + tile.off + tile.len];
                        for (slot, xj) in
                            out[p * j_n..(p + 1) * j_n].iter_mut().zip(x_block.chunks_exact(tile.len))
                        {
                            let mut d2 = 0.0;
                            for (zi, xi) in zrow.iter().zip(xj) {
                                let d = zi - alpha * xi;
                                d2 += d * d;
                            }
                            *slot = d2;
                        }
                    }
                }
                ScoreKernel::Batched => {
                    // Norm expansion with the Gram block as a per-tile GEMM:
                    // tile-fixed shapes make the reduction order a function
                    // of the tile alone.
                    let zt = &mut self.z_tile[..p_n * tile.len];
                    for p in 0..p_n {
                        zt[p * tile.len..(p + 1) * tile.len].copy_from_slice(
                            &self.z[p * self.local_len + tile.off
                                ..p * self.local_len + tile.off + tile.len],
                        );
                    }
                    row_sq_norms(zt, p_n, tile.len, &mut self.znorm);
                    matmul_abt_into(zt, x_block, p_n, j_n, tile.len, &mut self.gram);
                    let xn = &self.xnorm[lt * j_n..(lt + 1) * j_n];
                    for p in 0..p_n {
                        let zn = self.znorm[p];
                        for ((slot, &g), &x2) in out[p * j_n..(p + 1) * j_n]
                            .iter_mut()
                            .zip(&self.gram[p * j_n..(p + 1) * j_n])
                            .zip(xn)
                        {
                            *slot = zn - 2.0 * alpha * g + alpha_sq * x2;
                        }
                    }
                }
            }
        }
        &self.partials
    }

    /// Applies one reverse-SDE step `t → t_next` to the local block, given
    /// the concatenated partials of **all** tiles (ascending tile order,
    /// `n_tiles · P · J` values).
    ///
    /// The fold over tiles and the softmax run replicated on every rank;
    /// drift, noise and the damped likelihood pull touch only local tiles.
    ///
    /// # Panics
    /// Panics when `all_partials` has the wrong length.
    // lint: no_alloc
    pub fn apply_step(&mut self, t: f64, t_next: f64, all_partials: &[f64]) {
        let (p_n, j_n) = (self.members, self.batch_len);
        let pj = p_n * j_n;
        assert_eq!(all_partials.len(), self.n_tiles * pj, "partial vector length mismatch");

        // Fold the per-tile distance partials in ascending tile order —
        // one fixed-order chain per (particle, member) slot, replicated on
        // every rank — then the softmax weights.
        let beta_sq = self.schedule.beta_sq(t);
        let inv_2b2 = 0.5 / beta_sq;
        let inv_b2 = 1.0 / beta_sq;
        let alpha = self.schedule.alpha(t);
        self.weights.fill(0.0);
        for tile_block in all_partials.chunks_exact(pj) {
            for (w, &d2) in self.weights.iter_mut().zip(tile_block) {
                *w += d2;
            }
        }
        for row in self.weights.chunks_exact_mut(j_n) {
            for w in row.iter_mut() {
                *w = -*w * inv_2b2;
            }
            softmax_in_place(row);
        }

        let dt = t - t_next;
        let sig2 = self.schedule.sigma_sq(t);
        let sig = sig2.sqrt();
        let decay = self.schedule.alpha(t_next) / self.schedule.alpha(t);
        let is_final = t_next <= 1e-300;
        let noise_amp = if is_final { 0.0 } else { sig * dt.sqrt() };
        let gain = sig2 * self.schedule.damping(t) * dt;
        // Constant-Jacobian operators admit one damping factor per step
        // (same arithmetic as the per-element branch, so the two paths
        // agree bitwise for such operators).
        let hoisted_factor = self.obs.constant_jacobian_sq().map(|jc| {
            let c = gain * jc / self.sigma_obs_sq;
            if c > 1e-8 {
                (1.0 - (-c).exp()) / c
            } else {
                1.0
            }
        });
        // Flow-matching (DDIM) coefficients; unused by the SDE branch.
        let alpha_next = self.schedule.alpha(t_next);
        let beta_ratio = (self.schedule.beta_sq(t_next) / beta_sq).sqrt();

        let n_local = self.tiles.len();
        for (lt, tile) in self.tiles.iter().enumerate() {
            let x_block = &self.x_tiles[self.x_off[lt]..self.x_off[lt] + j_n * tile.len];
            let s_t = &mut self.s_tile[..p_n * tile.len];
            match self.kernel {
                ScoreKernel::Reference => {
                    // Weighted conditional scores, member-outer like the
                    // ScoreEstimator: s_i = Σ_j w_j (α x_ji − z_i)/β².
                    s_t.fill(0.0);
                    for p in 0..p_n {
                        let zrow = &self.z
                            [p * self.local_len + tile.off..p * self.local_len + tile.off + tile.len];
                        let srow = &mut s_t[p * tile.len..(p + 1) * tile.len];
                        for (&wj, xj) in self.weights[p * j_n..(p + 1) * j_n]
                            .iter()
                            .zip(x_block.chunks_exact(tile.len))
                        {
                            if wj == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero softmax weight skip is a bitwise no-op")
                                continue;
                            }
                            for ((si, zi), xi) in srow.iter_mut().zip(zrow).zip(xj) {
                                *si -= wj * (zi - alpha * xi) * inv_b2;
                            }
                        }
                    }
                }
                ScoreKernel::Batched => {
                    // S = (α W X − Z)/β² as the second per-tile GEMM with
                    // the affine part fused into the store.
                    let zt = &mut self.z_tile[..p_n * tile.len];
                    for p in 0..p_n {
                        zt[p * tile.len..(p + 1) * tile.len].copy_from_slice(
                            &self.z[p * self.local_len + tile.off
                                ..p * self.local_len + tile.off + tile.len],
                        );
                    }
                    matmul_slices_affine_into(
                        &self.weights,
                        x_block,
                        p_n,
                        j_n,
                        tile.len,
                        zt,
                        alpha * inv_b2,
                        -inv_b2,
                        s_t,
                    );
                }
            }

            let y_tile: &[f64] = &self.y_tiles[lt];
            let op = &self.ops[lt];
            if self.method == AnalysisMethod::FlowMatching {
                // Deterministic probability-flow update, mirroring the
                // serial `flow_step` elementwise: Tweedie denoising, the
                // per-component Kalman correction of `x̂`, and the DDIM map
                // to the next grid point. Consumes no RNG, so the
                // tile-keyed streams stay at their post-fill state and the
                // rank-invariance contract reduces to the score fold above.
                let v_tile = &self.prior_var[tile.off..tile.off + tile.len];
                let r = self.sigma_obs_sq;
                for p in 0..p_n {
                    let zrow = &mut self.z
                        [p * self.local_len + tile.off..p * self.local_len + tile.off + tile.len];
                    let srow = &s_t[p * tile.len..(p + 1) * tile.len];
                    let xh = &mut self.xh[..tile.len];
                    for ((xi, zi), si) in xh.iter_mut().zip(&*zrow).zip(srow) {
                        *xi = (*zi + beta_sq * si) / alpha;
                    }
                    let lik = &mut self.lik[..tile.len];
                    op.likelihood_score_into(xh, y_tile, 1.0, lik);
                    let jsq = &mut self.jsq[..tile.len];
                    op.jacobian_sq(xh, jsq);
                    for (k, (zi, xi)) in zrow.iter_mut().zip(&mut *xh).enumerate() {
                        let v = v_tile[k];
                        let vh = v * beta_sq / (alpha * alpha * v + beta_sq);
                        *xi += vh * lik[k] * r / (r + jsq[k] * vh);
                        *zi = alpha_next * *xi + beta_ratio * (*zi - alpha * *xi);
                    }
                }
                continue;
            }
            for p in 0..p_n {
                let zrow = &mut self.z
                    [p * self.local_len + tile.off..p * self.local_len + tile.off + tile.len];
                let srow = &s_t[p * tile.len..(p + 1) * tile.len];
                // Drift: each kernel mirrors its serial counterpart's
                // association (they agree to reassociation, not bitwise).
                match self.kernel {
                    ScoreKernel::Batched => scale_add(zrow, decay, srow, sig2 * dt),
                    ScoreKernel::Reference => {
                        for (zi, si) in zrow.iter_mut().zip(srow) {
                            *zi = decay * *zi + sig2 * si * dt;
                        }
                    }
                }
                // Noise from the (particle, tile) stream: one draw per
                // component per non-final step, the serial consumption
                // contract transplanted to tile streams.
                if noise_amp != 0.0 { // lint: allow(float-exact-compare, reason="noise_amp is set to exactly 0.0 on the final step")
                    let rng = &mut self.rngs[p * n_local + lt];
                    for zi in zrow.iter_mut() {
                        *zi += noise_amp * self.sampler.sample(rng);
                    }
                }
                // Damped likelihood pull, elementwise on the tile.
                if gain > 0.0 {
                    let lik = &mut self.lik[..tile.len];
                    op.likelihood_score_into(zrow, y_tile, gain, lik);
                    if let Some(factor) = hoisted_factor {
                        axpy(factor, lik, zrow);
                    } else {
                        let jsq = &mut self.jsq[..tile.len];
                        op.jacobian_sq(zrow, jsq);
                        for ((zi, li), ji) in zrow.iter_mut().zip(&*lik).zip(&*jsq) {
                            let c = gain * ji / self.sigma_obs_sq;
                            let factor = if c > 1e-8 { (1.0 - (-c).exp()) / c } else { 1.0 };
                            *zi += factor * li;
                        }
                    }
                }
            }
        }
    }

    /// Applies the spread relaxation to the local block and returns it
    /// (`P x local_len` row-major). Relaxation statistics are per-variable,
    /// so the block-local application equals the serial full-state one.
    pub fn finish(self) -> Vec<f64> {
        if self.spread_relaxation > 0.0 && self.local_len > 0 {
            let mut analysis = Ensemble::zeros(self.members, self.local_len);
            analysis.as_mut_slice().copy_from_slice(&self.z);
            let mut forecast = Ensemble::zeros(self.members, self.local_len);
            forecast.as_mut_slice().copy_from_slice(&self.f_block);
            let mut z = self.z;
            relax_spread(&mut analysis, &forecast, self.spread_relaxation);
            z.copy_from_slice(analysis.as_slice());
            z
        } else {
            self.z
        }
    }
}

/// Accounts one modeled collective against `spec` (when present) and
/// updates `stats`. Pure given its arguments: every rank reaches the same
/// `Ok`/`Err` verdict locally.
pub(crate) fn model_collective(
    spec: Option<&CommSpec>,
    stats: &mut CommStats,
    op: Collective,
    ranks: usize,
    bytes: u64,
) -> Result<(), DistError> {
    stats.collectives += 1;
    stats.bytes += bytes;
    match spec {
        None => {
            stats.attempts += 1;
            Ok(())
        }
        Some(spec) => {
            let r = collective_with_retry(&spec.topo, op, ranks, bytes, &spec.faults, &spec.policy)?;
            stats.attempts += u64::from(r.attempts);
            stats.modeled_comm_secs += r.time;
            Ok(())
        }
    }
}

/// Runs one sharded EnSF analysis over the communicator, returning this
/// rank's analysis block (`P x local_len` row-major).
///
/// Per SDE step the ranks exchange their tile partials through
/// [`Comm::try_allgather_concat`]; with a [`CommSpec`] each exchange is
/// also priced (and possibly failed) by the fault-tolerant collective
/// model — a retry-budget exhaustion surfaces as [`DistError::Collective`]
/// on every rank in the same step, and a peer dying mid-exchange as
/// [`DistError::Mpi`] (never a hang).
///
/// # Panics
/// Panics when the plan's rank count disagrees with the communicator size
/// or the inputs disagree with the plan (see [`ShardKernel::new`]).
#[allow(clippy::too_many_arguments)]
pub fn dist_analyze(
    comm: &Comm,
    plan: &ShardPlan,
    config: &EnsfConfig,
    cycle: u64,
    forecast: &Ensemble,
    y: &[f64],
    obs: &DistObs,
    spec: Option<&CommSpec>,
    stats: &mut CommStats,
) -> Result<Vec<f64>, DistError> {
    assert_eq!(plan.ranks(), comm.size(), "plan/communicator size mismatch");
    let _span = telemetry::span!("dist.analysis");
    let mut kernel = ShardKernel::new(plan, comm.rank(), config, cycle, forecast, y, obs);
    let times = TimeGrid::LogSpaced.points(&config.schedule, config.n_steps);
    let exchanged_bytes = (kernel.n_tiles() * kernel.partials_per_tile() * 8) as u64;

    for win in times.windows(2) {
        let partials = kernel.tile_partials(win[0]);
        model_collective(spec, stats, Collective::AllGather, comm.size(), exchanged_bytes)?;
        let full = comm.try_allgather_concat(partials)?;
        kernel.apply_step(win[0], win[1], &full);
    }
    telemetry::counter_add("dist.analyses", 1);
    match config.method {
        AnalysisMethod::ReverseSde => {
            telemetry::counter_add("dist.sde_steps", (times.len() - 1) as u64)
        }
        AnalysisMethod::FlowMatching => {
            telemetry::counter_add("dist.flow_steps", (times.len() - 1) as u64)
        }
    }
    Ok(kernel.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc::mpi::run_world;
    use stats::rng::member_rng;

    fn gaussian_ensemble(members: usize, dim: usize, seed: u64) -> Ensemble {
        let mut e = Ensemble::zeros(members, dim);
        for m in 0..members {
            let mut rng = member_rng(seed, m);
            fill_standard_normal(&mut rng, e.member_mut(m));
        }
        e
    }

    fn analyze_with_ranks(
        ranks: usize,
        kernel: ScoreKernel,
        tile: usize,
        minibatch: Option<usize>,
    ) -> Vec<f64> {
        let dim = 96;
        let forecast = gaussian_ensemble(6, dim, 11);
        let y = vec![0.25; dim];
        let obs = DistObs::Identity { sigma: 0.4 };
        let config = EnsfConfig { n_steps: 12, seed: 9, minibatch, kernel, ..Default::default() };
        let plan = ShardPlan::new(dim, tile, ranks);
        let blocks = run_world(ranks, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats).unwrap()
        });
        // Reassemble rank blocks into the member-major full ensemble.
        let mut full = vec![0.0; 6 * dim];
        for (r, block) in blocks.iter().enumerate() {
            let (lo, hi) = plan.rank_range(r);
            for p in 0..6 {
                full[p * dim + lo..p * dim + hi]
                    .copy_from_slice(&block[p * (hi - lo)..(p + 1) * (hi - lo)]);
            }
        }
        full
    }

    #[test]
    fn analysis_is_bitwise_identical_for_any_rank_count() {
        for kernel in [ScoreKernel::Reference, ScoreKernel::Batched] {
            let one = analyze_with_ranks(1, kernel, 16, None);
            for ranks in [2, 3, 4, 6] {
                let many = analyze_with_ranks(ranks, kernel, 16, None);
                assert_eq!(one, many, "{kernel:?} diverged at {ranks} ranks");
            }
        }
    }

    #[test]
    fn minibatch_analysis_is_rank_count_invariant() {
        let one = analyze_with_ranks(1, ScoreKernel::Batched, 16, Some(3));
        let four = analyze_with_ranks(4, ScoreKernel::Batched, 16, Some(3));
        assert_eq!(one, four);
    }

    #[test]
    fn kernels_agree_to_reassociation() {
        let a = analyze_with_ranks(2, ScoreKernel::Reference, 16, None);
        let b = analyze_with_ranks(2, ScoreKernel::Batched, 16, None);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn analysis_moves_toward_observation_like_serial() {
        // Behavioral check on the full reassembled state: the sharded
        // analysis pulls the ensemble toward the observation and lands at
        // (statistically) the same posterior as the serial filter. The two
        // draw different SDE noise streams — member-keyed serially,
        // (particle, tile)-keyed here — so the means agree only to
        // Monte-Carlo tolerance, never bitwise.
        let dim = 16;
        let members = 40;
        let forecast = gaussian_ensemble(members, dim, 3);
        let y = vec![2.0; dim];
        let obs = DistObs::Identity { sigma: 0.3 };
        let config = EnsfConfig { n_steps: 50, seed: 4, ..Default::default() };
        let plan = ShardPlan::new(dim, 4, 2);
        let blocks = run_world(2, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats).unwrap()
        });
        let n_elems: usize = blocks.iter().map(Vec::len).sum();
        assert_eq!(n_elems, members * dim);
        let dist_mean: f64 = blocks.iter().flatten().sum::<f64>() / n_elems as f64;

        let mut serial = ensf::Ensf::new(config);
        let serial_obs = ensf::IdentityObs::new(dim, 0.3);
        let analysis = serial.analyze(&forecast, &y, &serial_obs);
        let serial_mean: f64 =
            analysis.as_slice().iter().sum::<f64>() / (members * dim) as f64;

        let prior_mean: f64 =
            forecast.as_slice().iter().sum::<f64>() / (members * dim) as f64;
        assert!(
            dist_mean > prior_mean + 0.25,
            "analysis mean {dist_mean} did not move toward obs from {prior_mean}"
        );
        assert!(dist_mean < 2.4, "analysis mean {dist_mean} overshot");
        assert!(
            (dist_mean - serial_mean).abs() < 0.1,
            "distributed mean {dist_mean} disagrees with serial mean {serial_mean}"
        );
    }

    #[test]
    fn arctan_observation_is_rank_count_invariant() {
        let dim = 48;
        let forecast = gaussian_ensemble(5, dim, 21);
        let y = vec![0.3; dim];
        let obs = DistObs::Arctan { sigma: 0.3, gain: 1.0 };
        let config = EnsfConfig { n_steps: 10, seed: 2, ..Default::default() };
        let run = |ranks: usize| {
            let plan = ShardPlan::new(dim, 8, ranks);
            let blocks = run_world(ranks, |comm| {
                let mut stats = CommStats::default();
                dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats)
                    .unwrap()
            });
            let mut full = vec![0.0; 5 * dim];
            for (r, block) in blocks.iter().enumerate() {
                let (lo, hi) = plan.rank_range(r);
                for p in 0..5 {
                    full[p * dim + lo..p * dim + hi]
                        .copy_from_slice(&block[p * (hi - lo)..(p + 1) * (hi - lo)]);
                }
            }
            full
        };
        assert_eq!(run(1), run(3), "arctan path diverged across rank counts");
    }

    fn flow_analyze_with_ranks(
        ranks: usize,
        kernel: ScoreKernel,
        tile: usize,
        n_steps: usize,
    ) -> Vec<f64> {
        let dim = 96;
        let forecast = gaussian_ensemble(6, dim, 11);
        let y = vec![0.25; dim];
        let obs = DistObs::Identity { sigma: 0.4 };
        let config = EnsfConfig {
            n_steps,
            seed: 9,
            kernel,
            method: AnalysisMethod::FlowMatching,
            ..Default::default()
        };
        let plan = ShardPlan::new(dim, tile, ranks);
        let blocks = run_world(ranks, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats).unwrap()
        });
        let mut full = vec![0.0; 6 * dim];
        for (r, block) in blocks.iter().enumerate() {
            let (lo, hi) = plan.rank_range(r);
            for p in 0..6 {
                full[p * dim + lo..p * dim + hi]
                    .copy_from_slice(&block[p * (hi - lo)..(p + 1) * (hi - lo)]);
            }
        }
        full
    }

    #[test]
    fn flow_analysis_is_bitwise_identical_for_any_rank_count() {
        for kernel in [ScoreKernel::Reference, ScoreKernel::Batched] {
            let one = flow_analyze_with_ranks(1, kernel, 16, 6);
            for ranks in [2, 3, 4, 6] {
                let many = flow_analyze_with_ranks(ranks, kernel, 16, 6);
                assert_eq!(one, many, "flow {kernel:?} diverged at {ranks} ranks");
            }
        }
    }

    #[test]
    fn single_step_flow_analysis_stays_finite_and_rank_invariant() {
        // The deepest deadline-ladder degradation: one DDIM step.
        let one = flow_analyze_with_ranks(1, ScoreKernel::Batched, 16, 1);
        assert!(one.iter().all(|v| v.is_finite()));
        assert_eq!(one, flow_analyze_with_ranks(4, ScoreKernel::Batched, 16, 1));
    }

    #[test]
    fn smoothed_flow_variance_stays_rank_layout_invariant() {
        // Variance shrinkage is folded per global tile, so the smoothed
        // gains must stay bitwise identical no matter how the tile grid is
        // split across ranks.
        let dim = 96;
        let forecast = gaussian_ensemble(6, dim, 13);
        let y = vec![0.25; dim];
        let obs = DistObs::Identity { sigma: 0.4 };
        let config = EnsfConfig {
            n_steps: 5,
            seed: 9,
            kernel: ScoreKernel::Batched,
            method: AnalysisMethod::FlowMatching,
            variance_smoothing: 0.6,
            ..Default::default()
        };
        let run = |ranks: usize| {
            let plan = ShardPlan::new(dim, 16, ranks);
            let blocks = run_world(ranks, |comm| {
                let mut stats = CommStats::default();
                dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats)
                    .unwrap()
            });
            let mut full = vec![0.0; 6 * dim];
            for (r, block) in blocks.iter().enumerate() {
                let (lo, hi) = plan.rank_range(r);
                for p in 0..6 {
                    full[p * dim + lo..p * dim + hi]
                        .copy_from_slice(&block[p * (hi - lo)..(p + 1) * (hi - lo)]);
                }
            }
            full
        };
        let one = run(1);
        assert!(one.iter().all(|v| v.is_finite()));
        for ranks in [2, 3, 6] {
            assert_eq!(one, run(ranks), "smoothed flow diverged at {ranks} ranks");
        }
    }

    #[test]
    fn flow_analysis_moves_toward_observation_like_serial() {
        // Statistical agreement only: the sharded flow starts from
        // tile-keyed initial fills, the serial one from member-keyed fills,
        // so individual particles differ while the posterior agrees.
        let dim = 16;
        let members = 40;
        let forecast = gaussian_ensemble(members, dim, 3);
        let y = vec![2.0; dim];
        let obs = DistObs::Identity { sigma: 0.3 };
        let config = EnsfConfig {
            n_steps: 6,
            seed: 4,
            method: AnalysisMethod::FlowMatching,
            ..Default::default()
        };
        let plan = ShardPlan::new(dim, 4, 2);
        let blocks = run_world(2, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats).unwrap()
        });
        let n_elems: usize = blocks.iter().map(Vec::len).sum();
        assert_eq!(n_elems, members * dim);
        let dist_mean: f64 = blocks.iter().flatten().sum::<f64>() / n_elems as f64;

        let mut serial = ensf::Ensf::new(config.clone());
        let serial_obs = ensf::IdentityObs::new(dim, 0.3);
        let analysis = serial.analyze(&forecast, &y, &serial_obs);
        let serial_mean: f64 = analysis.as_slice().iter().sum::<f64>() / (members * dim) as f64;

        let prior_mean: f64 = forecast.as_slice().iter().sum::<f64>() / (members * dim) as f64;
        assert!(
            dist_mean > prior_mean + 0.25,
            "flow analysis mean {dist_mean} did not move toward obs from {prior_mean}"
        );
        assert!(dist_mean < 2.4, "flow analysis mean {dist_mean} overshot");
        assert!(
            (dist_mean - serial_mean).abs() < 0.1,
            "distributed flow mean {dist_mean} disagrees with serial flow mean {serial_mean}"
        );
    }

    #[test]
    fn arctan_flow_is_rank_count_invariant() {
        let dim = 48;
        let forecast = gaussian_ensemble(5, dim, 21);
        let y = vec![0.3; dim];
        let obs = DistObs::Arctan { sigma: 0.3, gain: 1.0 };
        let config = EnsfConfig {
            n_steps: 8,
            seed: 2,
            method: AnalysisMethod::FlowMatching,
            ..Default::default()
        };
        let run = |ranks: usize| {
            let plan = ShardPlan::new(dim, 8, ranks);
            let blocks = run_world(ranks, |comm| {
                let mut stats = CommStats::default();
                dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, None, &mut stats)
                    .unwrap()
            });
            let mut full = vec![0.0; 5 * dim];
            for (r, block) in blocks.iter().enumerate() {
                let (lo, hi) = plan.rank_range(r);
                for p in 0..5 {
                    full[p * dim + lo..p * dim + hi]
                        .copy_from_slice(&block[p * (hi - lo)..(p + 1) * (hi - lo)]);
                }
            }
            full
        };
        assert_eq!(run(1), run(3), "arctan flow path diverged across rank counts");
    }

    fn masked_analyze_with_ranks(
        ranks: usize,
        kernel: ScoreKernel,
        method: AnalysisMethod,
        mask: da_core::MaskKind,
        cycle: u64,
    ) -> Vec<f64> {
        let dim = 96;
        let members = 6;
        let forecast = gaussian_ensemble(members, dim, 11);
        let obs = DistObs::Masked {
            sigma: 0.05,
            base: da_core::ObsOperatorKind::Identity,
            mask,
        };
        // Shrunk observation vector: one value per observed component.
        let y: Vec<f64> = (0..obs.obs_len(dim, cycle)).map(|k| 0.25 + 0.001 * k as f64).collect();
        let config = EnsfConfig {
            n_steps: 20,
            seed: 9,
            kernel,
            method,
            ..Default::default()
        };
        let plan = ShardPlan::new(dim, 16, ranks);
        let blocks = run_world(ranks, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, cycle, &forecast, &y, &obs, None, &mut stats)
                .unwrap()
        });
        let mut full = vec![0.0; members * dim];
        for (r, block) in blocks.iter().enumerate() {
            let (lo, hi) = plan.rank_range(r);
            for p in 0..members {
                full[p * dim + lo..p * dim + hi]
                    .copy_from_slice(&block[p * (hi - lo)..(p + 1) * (hi - lo)]);
            }
        }
        full
    }

    #[test]
    fn masked_block_analysis_is_bitwise_identical_for_any_rank_count() {
        // The outage spans tiles 0–2 entirely and cuts tile 3 in half, so
        // some ranks own tiles with empty observation slices — the
        // partition must stay invariant to who owns what.
        let mask = da_core::MaskKind::Block { start: 0, len: 56 };
        for kernel in [ScoreKernel::Reference, ScoreKernel::Batched] {
            let one =
                masked_analyze_with_ranks(1, kernel, AnalysisMethod::ReverseSde, mask, 0);
            assert!(one.iter().all(|v| v.is_finite()));
            for ranks in [2, 3, 4, 6] {
                let many =
                    masked_analyze_with_ranks(ranks, kernel, AnalysisMethod::ReverseSde, mask, 0);
                assert_eq!(one, many, "masked {kernel:?} diverged at {ranks} ranks");
            }
        }
    }

    #[test]
    fn masked_track_flow_is_rank_count_invariant_at_any_cycle() {
        // Moving-track mask: the observed window depends on the cycle
        // index, which reaches the kernel directly — the per-tile partition
        // must re-resolve identically on every rank layout.
        let mask = da_core::MaskKind::Track { width: 40, speed: 7 };
        for cycle in [0, 3] {
            let one = masked_analyze_with_ranks(
                1,
                ScoreKernel::Batched,
                AnalysisMethod::FlowMatching,
                mask,
                cycle,
            );
            assert!(one.iter().all(|v| v.is_finite()));
            for ranks in [2, 4] {
                let many = masked_analyze_with_ranks(
                    ranks,
                    ScoreKernel::Batched,
                    AnalysisMethod::FlowMatching,
                    mask,
                    cycle,
                );
                assert_eq!(one, many, "masked flow diverged at {ranks} ranks, cycle {cycle}");
            }
        }
    }

    #[test]
    fn masked_guidance_pulls_only_observed_components() {
        // With guidance confined to the observed window, observed
        // components must track the observations much more tightly than
        // the score-only outage.
        let dim = 96;
        let mask = da_core::MaskKind::Block { start: 48, len: 48 };
        let full = masked_analyze_with_ranks(
            2,
            ScoreKernel::Batched,
            AnalysisMethod::ReverseSde,
            mask,
            0,
        );
        let members = 6;
        let mut mean = vec![0.0; dim];
        for p in 0..members {
            for i in 0..dim {
                mean[i] += full[p * dim + i] / members as f64;
            }
        }
        let err_obs: f64 = (0..48).map(|i| (mean[i] - 0.25).abs()).sum::<f64>() / 48.0;
        let err_out: f64 = (48..96).map(|i| (mean[i] - 0.25).abs()).sum::<f64>() / 48.0;
        assert!(
            err_obs < 0.35 && err_out > 1.5 * err_obs,
            "observed err {err_obs} vs outage err {err_out}"
        );
    }

    #[test]
    fn faulty_collective_fails_identically_on_all_ranks() {
        let dim = 32;
        let forecast = gaussian_ensemble(4, dim, 7);
        let y = vec![0.0; dim];
        let obs = DistObs::Identity { sigma: 1.0 };
        let config = EnsfConfig { n_steps: 5, seed: 1, ..Default::default() };
        let plan = ShardPlan::new(dim, 8, 2);
        let spec = CommSpec {
            faults: vec![RankFault { rank: 0, failures: 99, permanent: false }],
            ..CommSpec::clean(2)
        };
        let results = run_world(2, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, Some(&spec), &mut stats)
                .err()
        });
        let want = DistError::Collective(hpc::CollectiveError::Exhausted { attempts: 4 });
        for r in &results {
            assert_eq!(r.as_ref(), Some(&want), "all ranks must observe the same failure");
        }
    }

    #[test]
    fn clean_commspec_accounts_time_without_failing() {
        let dim = 32;
        let forecast = gaussian_ensemble(4, dim, 7);
        let y = vec![0.0; dim];
        let obs = DistObs::Identity { sigma: 1.0 };
        let config = EnsfConfig { n_steps: 5, seed: 1, ..Default::default() };
        let plan = ShardPlan::new(dim, 8, 2);
        let spec = CommSpec::clean(2);
        let stats = run_world(2, |comm| {
            let mut stats = CommStats::default();
            dist_analyze(comm, &plan, &config, 0, &forecast, &y, &obs, Some(&spec), &mut stats)
                .unwrap();
            stats
        });
        for s in &stats {
            assert_eq!(s.collectives, 5, "one allgather per SDE step");
            assert_eq!(s.attempts, 5);
            assert!(s.modeled_comm_secs > 0.0);
            assert!(s.bytes > 0);
        }
    }

    #[test]
    fn tile_streams_are_decorrelated() {
        // Distinct (particle, tile) pairs must give distinct first draws.
        let mut firsts = Vec::new();
        for p in 0..4 {
            for t in 0..4 {
                let mut rng = tile_rng(42, p, t);
                let mut buf = [0.0];
                fill_standard_normal(&mut rng, &mut buf);
                firsts.push(buf[0].to_bits());
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 16, "tile RNG streams must not collide");
    }
}
