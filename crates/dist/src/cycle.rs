//! Distributed OSSE cycling: forecast → observe → analyze over ranks.
//!
//! The execution shape of the paper's Frontier campaigns (§IV) on the
//! simulated communicator. Forecasts are **replicated**: the SQG step is a
//! deterministic spectral integration, so every rank advances the same full
//! ensemble and lands on identical bits — replication costs no
//! communication and keeps the forecast model unmodified. The analysis is
//! **sharded** along the state dimension ([`dist_analyze`]); afterwards one
//! allgather reassembles the analysis blocks into the replicated full
//! ensemble for the next forecast (the scatter is implicit: each rank reads
//! its block out of the replicated state). Diagnostics (RMSE, spread) are
//! computed redundantly on every rank from the reassembled ensemble, which
//! keeps them trivially consistent.

use crate::analysis::{dist_analyze, model_collective, CommSpec, CommStats, DistObs};
use crate::shard::ShardPlan;
use crate::DistError;
use da_core::osse::{
    initial_ensemble, nature_run, CycleSeries, NatureRun, ObsOperatorKind, OsseConfig,
};
use da_core::{ForecastModel, SqgForecast};
use ensf::EnsfConfig;
use hpc::mpi::{run_world, Comm};
use hpc::Collective;
use stats::Ensemble;

/// Default tile width: 64 components. The paper's reduced test grid
/// (`n = 16`, `d = 512`) then has 8 tiles — enough to exercise 8 ranks —
/// while the production `d = 8192` state has 128.
pub const DEFAULT_TILE: usize = 64;

/// Configuration of one distributed OSSE experiment.
#[derive(Debug, Clone)]
pub struct DistCycleConfig {
    /// Twin-experiment setup (grid, cycles, observation noise, ensemble).
    pub osse: OsseConfig,
    /// EnSF filter settings (steps, kernel, seed, relaxation).
    pub ensf: EnsfConfig,
    /// Tile width of the state partition. Part of the *numerics*: changing
    /// it reassociates reductions and changes low-order bits; changing the
    /// rank count never does.
    pub tile: usize,
    /// Optional simulated-network model: prices every collective with the
    /// α–β cost model and applies scripted rank faults through the bounded
    /// retry path. `None` runs the clean data path only.
    pub comm: Option<CommSpec>,
}

impl Default for DistCycleConfig {
    fn default() -> Self {
        DistCycleConfig {
            osse: OsseConfig::default(),
            ensf: EnsfConfig::default(),
            tile: DEFAULT_TILE,
            comm: None,
        }
    }
}

/// The distributed observation model matching an OSSE configuration: the
/// nature run synthesizes observations through `osse.obs_operator` (shrunk
/// to `osse.obs_mask`'s observed components when the network is partial),
/// so the analysis must assimilate through the same operator and mask.
/// Full masks map to the dense variants so the pre-existing paths stay
/// bitwise untouched.
pub fn dist_obs_for(osse: &OsseConfig) -> DistObs {
    if !osse.obs_mask.is_full() {
        return DistObs::Masked {
            sigma: osse.obs_sigma,
            base: osse.obs_operator,
            mask: osse.obs_mask,
        };
    }
    match osse.obs_operator {
        ObsOperatorKind::Identity => DistObs::Identity { sigma: osse.obs_sigma },
        ObsOperatorKind::Arctan { gain } => DistObs::Arctan { sigma: osse.obs_sigma, gain },
    }
}

/// Result of one distributed experiment (identical on every rank).
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Per-cycle verification series (same shape as the serial harness).
    pub series: CycleSeries,
    /// Analysis ensemble mean after every cycle — the bitwise fingerprint
    /// the determinism tests compare across rank counts.
    pub cycle_means: Vec<Vec<f64>>,
    /// Final analysis ensemble.
    pub ensemble: Ensemble,
    /// Collective accounting for this rank.
    pub stats: CommStats,
}

/// Runs one distributed OSSE experiment on this rank's slice of the world.
///
/// Every rank receives the same configuration and nature run and returns
/// the same [`DistRunResult`] (bar [`CommStats`], which is per-rank but
/// identical under a symmetric fault script) — the replicated-state
/// contract that [`run_osse`] asserts.
///
/// # Errors
/// [`DistError::Config`] when the nature run is too short or disagrees
/// with the model grid; [`DistError::Collective`] when a scripted fault
/// outlasts the retry budget (raised in the same cycle on every rank).
pub fn run_dist_experiment(
    comm: &Comm,
    config: &DistCycleConfig,
    nature: &NatureRun,
) -> Result<DistRunResult, DistError> {
    let Some(truth0) = nature.truth.first() else {
        return Err(DistError::Config("empty nature run".into()));
    };
    let dim = config.osse.params.state_dim();
    if truth0.len() != dim {
        return Err(DistError::Config(format!(
            "nature run dimension {} does not match model dimension {dim}",
            truth0.len()
        )));
    }
    if nature.observations.len() < config.osse.cycles {
        return Err(DistError::Config(format!(
            "nature run provides {} observations for {} cycles",
            nature.observations.len(),
            config.osse.cycles
        )));
    }
    if config.tile == 0 {
        return Err(DistError::Config("tile width must be positive".into()));
    }
    if let Err(msg) = config.ensf.validate() {
        return Err(DistError::Config(msg));
    }

    let plan = ShardPlan::new(dim, config.tile, comm.size());
    let obs = dist_obs_for(&config.osse);
    let spec = config.comm.as_ref();
    let mut model = SqgForecast::perfect(config.osse.params.clone());
    let mut ensemble = initial_ensemble(&config.osse, truth0);
    let members = ensemble.members();
    let (rank_lo, rank_hi) = plan.rank_range(comm.rank());

    let mut stats = CommStats::default();
    let mut hours = Vec::with_capacity(config.osse.cycles);
    let mut rmse = Vec::with_capacity(config.osse.cycles);
    let mut spread = Vec::with_capacity(config.osse.cycles);
    let mut cycle_means = Vec::with_capacity(config.osse.cycles);

    for cycle in 0..config.osse.cycles {
        let _span = telemetry::span!("dist.cycle");
        // Replicated forecast: deterministic, so every rank stays bitwise
        // in lockstep without exchanging state.
        let t_fc = telemetry::enabled().then(std::time::Instant::now);
        model.forecast_ensemble(&mut ensemble, config.osse.obs_interval_hours);
        let forecast_secs = t_fc.map(|t| t.elapsed().as_secs_f64());

        // Forecast half of the per-cycle diagnostics, computed on rank 0
        // only (the record would be identical on every rank — replicated
        // state — so one rank speaks for the world).
        let pre_diag = (telemetry::enabled() && comm.rank() == 0).then(|| {
            da_core::diagnostics::forecast_stats_masked(
                &ensemble,
                &nature.observations[cycle],
                config.osse.obs_sigma,
                config.osse.obs_operator,
                config.osse.obs_mask,
                cycle as u64,
            )
        });

        // Sharded analysis on this rank's block.
        let t_an = telemetry::enabled().then(std::time::Instant::now);
        let local = dist_analyze(
            comm,
            &plan,
            &config.ensf,
            cycle as u64,
            &ensemble,
            &nature.observations[cycle],
            &obs,
            spec,
            &mut stats,
        )?;
        debug_assert_eq!(local.len(), members * (rank_hi - rank_lo));

        // Gather the analysis blocks back into the replicated ensemble.
        model_collective(spec, &mut stats, Collective::AllGather, comm.size(), (members * dim * 8) as u64)?;
        let blocks = comm.try_allgather(&local)?;
        for (r, block) in blocks.iter().enumerate() {
            let (lo, hi) = plan.rank_range(r);
            let len = hi - lo;
            for p in 0..members {
                ensemble.member_mut(p)[lo..hi].copy_from_slice(&block[p * len..(p + 1) * len]);
            }
        }
        let analysis_secs = t_an.map(|t| t.elapsed().as_secs_f64());

        let mean = ensemble.mean();
        hours.push((cycle + 1) as f64 * config.osse.obs_interval_hours);
        rmse.push(stats::metrics::rmse(&mean, &nature.truth[cycle + 1]));
        spread.push(ensemble.spread());
        if telemetry::enabled() {
            telemetry::counter_add("dist.cycles", 1);
            // INVARIANT: pushed immediately above.
            telemetry::gauge_set("dist.cycle.rmse", *rmse.last().unwrap());
            // INVARIANT: pushed immediately above.
            telemetry::gauge_set("dist.cycle.spread", *spread.last().unwrap());
            if let Some(pre) = &pre_diag {
                let diagnostics = da_core::diagnostics::complete_masked(
                    pre,
                    &ensemble,
                    &nature.observations[cycle],
                    // INVARIANT: pushed immediately above.
                    *rmse.last().unwrap(),
                    config.osse.obs_operator,
                    config.osse.obs_mask,
                    cycle as u64,
                );
                telemetry::gauge_set("dist.cycle.spread_skill", diagnostics.spread_skill);
                telemetry::gauge_set("dist.cycle.chi2", diagnostics.chi2);
                telemetry::record_cycle(telemetry::CycleRecord {
                    label: format!("dist-ensf@{}r", comm.size()),
                    cycle,
                    // INVARIANT: pushed immediately above.
                    hours: *hours.last().unwrap(),
                    rmse: *rmse.last().unwrap(), // INVARIANT: pushed above
                    spread: *spread.last().unwrap(), // INVARIANT: pushed above
                    obs_count: nature.observations[cycle].len(),
                    phases: vec![
                        ("forecast".to_string(), forecast_secs.unwrap_or(0.0)),
                        ("analysis".to_string(), analysis_secs.unwrap_or(0.0)),
                    ],
                    events: Vec::new(),
                    diagnostics: Some(diagnostics),
                });
            }
        }
        cycle_means.push(mean);
    }

    // INVARIANT: cycle_means has an entry per cycle; with zero cycles the
    // final mean is the initial ensemble's.
    let final_mean = cycle_means.last().cloned().unwrap_or_else(|| ensemble.mean());
    Ok(DistRunResult {
        series: CycleSeries {
            label: format!("dist-ensf@{}r", comm.size()),
            hours,
            rmse,
            spread,
            final_mean,
        },
        cycle_means,
        ensemble,
        stats,
    })
}

/// Convenience driver: generates the nature run, spins up `ranks` simulated
/// MPI ranks ([`run_world`]), runs the distributed experiment on each, and
/// returns rank 0's result after asserting the replicated-state contract.
///
/// # Errors
/// Propagates the (identical) per-rank [`DistError`].
///
/// # Panics
/// Panics if the ranks disagree on the analysis trajectory — a broken
/// internal invariant, not a user error.
pub fn run_osse(config: &DistCycleConfig, ranks: usize) -> Result<DistRunResult, DistError> {
    let nature = nature_run(&config.osse);
    let mut results = run_world(ranks, |comm| run_dist_experiment(comm, config, &nature));
    let first = results.remove(0)?;
    for (r, result) in results.into_iter().enumerate() {
        let result = result?;
        assert_eq!(
            result.cycle_means, first.cycle_means,
            "rank {} disagrees with rank 0 on the analysis trajectory",
            r + 1
        );
        assert_eq!(
            result.ensemble.as_slice(),
            first.ensemble.as_slice(),
            "rank {} disagrees with rank 0 on the final ensemble",
            r + 1
        );
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensf::ScoreKernel;
    use sqg::SqgParams;

    /// Reduced grid (d = 512, 8 tiles of 64): fast enough for unit tests.
    fn tiny_config(cycles: usize) -> DistCycleConfig {
        DistCycleConfig {
            osse: OsseConfig {
                params: SqgParams { n: 16, ..Default::default() },
                cycles,
                obs_sigma: 0.005,
                ens_size: 8,
                ic_sigma: 0.01,
                spinup_steps: 40,
                seed: 3,
                ..Default::default()
            },
            ensf: EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn cycling_is_bitwise_identical_across_rank_counts() {
        let config = tiny_config(2);
        let one = run_osse(&config, 1).unwrap();
        for ranks in [2, 4] {
            let many = run_osse(&config, ranks).unwrap();
            for (c, (a, b)) in one.cycle_means.iter().zip(&many.cycle_means).enumerate() {
                let bits_a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "cycle {c} diverged at {ranks} ranks");
            }
            assert_eq!(one.ensemble.as_slice(), many.ensemble.as_slice());
        }
    }

    #[test]
    fn masked_cycling_is_bitwise_identical_across_rank_counts() {
        // 25% contiguous outage spanning the top of level 0 and the bottom
        // of level 1; the shrunk observation vector and per-tile mask
        // partition must not leak any rank-count dependence into the bits.
        let mut config = tiny_config(2);
        config.osse.obs_mask = da_core::MaskKind::Block { start: 192, len: 128 };
        let one = run_osse(&config, 1).unwrap();
        for ranks in [2, 4] {
            let many = run_osse(&config, ranks).unwrap();
            for (c, (a, b)) in one.cycle_means.iter().zip(&many.cycle_means).enumerate() {
                let bits_a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "masked cycle {c} diverged at {ranks} ranks");
            }
            assert_eq!(one.ensemble.as_slice(), many.ensemble.as_slice());
        }
    }

    #[test]
    fn moving_track_mask_cycles_across_ranks() {
        // The satellite track advances each cycle, so consecutive cycles
        // see different observed windows (and observation lengths).
        let mut config = tiny_config(3);
        config.osse.obs_mask = da_core::MaskKind::Track { width: 256, speed: 40 };
        let one = run_osse(&config, 1).unwrap();
        let four = run_osse(&config, 4).unwrap();
        assert_eq!(one.cycle_means, four.cycle_means);
        assert!(one.series.rmse.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn assimilation_tracks_truth() {
        let config = tiny_config(4);
        let result = run_osse(&config, 2).unwrap();
        assert_eq!(result.series.rmse.len(), 4);
        assert!(result.series.rmse.iter().all(|r| r.is_finite()));
        // With tight observations the analysis stays near the truth
        // (free-running forecasts drift to O(climatology) errors).
        let last = *result.series.rmse.last().unwrap();
        assert!(last < 0.05, "distributed DA lost the truth: RMSE {last}");
    }

    #[test]
    fn reference_kernel_cycles_deterministically() {
        let mut config = tiny_config(2);
        config.ensf.kernel = ScoreKernel::Reference;
        let one = run_osse(&config, 1).unwrap();
        let four = run_osse(&config, 4).unwrap();
        assert_eq!(one.cycle_means, four.cycle_means);
    }

    #[test]
    fn comm_spec_prices_cycling_collectives() {
        let mut config = tiny_config(1);
        config.comm = Some(CommSpec::clean(2));
        let result = run_osse(&config, 2).unwrap();
        // One allgather per SDE step plus one block gather per cycle.
        assert_eq!(result.stats.collectives, config.ensf.n_steps as u64 + 1);
        assert!(result.stats.modeled_comm_secs > 0.0);
    }

    #[test]
    fn config_errors_are_reported_not_fatal() {
        let mut config = tiny_config(1);
        config.osse.cycles = 99; // nature run generated for 99, then truncated
        let nature = {
            let mut n = nature_run(&tiny_config(1).osse);
            n.observations.clear();
            n
        };
        let errs = run_world(1, |comm| run_dist_experiment(comm, &config, &nature).unwrap_err());
        assert!(matches!(&errs[0], DistError::Config(_)));

        let mut bad_tile = tiny_config(1);
        bad_tile.tile = 0;
        let nature2 = nature_run(&bad_tile.osse);
        let errs =
            run_world(1, |comm| run_dist_experiment(comm, &bad_tile, &nature2).unwrap_err());
        assert!(matches!(&errs[0], DistError::Config(_)));
    }
}
