//! Elastic rank-failure recovery and deadline-aware degraded analysis.
//!
//! The fault-surviving variant of [`crate::cycle`]: the same replicated
//! forecast / sharded analysis loop, but wired to the live fault machinery
//! of [`hpc::mpi`] instead of the pure retry model. A rank killed by a
//! [`FaultPlan`] surfaces as [`hpc::MpiError::RankDead`] inside the first
//! collective that misses it (never a hang); the survivors then run a
//! ULFM-style recovery:
//!
//! 1. the detecting rank **revokes** the epoch, waking every parked peer
//!    with [`hpc::MpiError::Revoked`];
//! 2. every survivor independently computes the same shrunken group — the
//!    current group minus the ranks the fault script kills this cycle and
//!    minus anything registered dead — and calls [`hpc::Comm::recover`]
//!    with the agreed generation counter;
//! 3. the cycle's analysis is **redone from the replicated forecast** on
//!    the shrunken group. Because the sharded analysis is bitwise
//!    rank-count-invariant, the redone cycle (and every later one) is
//!    bitwise identical to a fresh run at the surviving rank count.
//!
//! Dead ranks can **rejoin**: at the scripted cycle the coordinator
//! (lowest surviving world rank) revives the rank, sends it an
//! out-of-band grant, and every survivor re-expands the group; the
//! rejoiner restores the cycling state from the latest
//! [`Checkpoint`] and re-enters the loop bit-identically.
//!
//! Independently, a per-cycle **deadline budget** ([`DeadlinePolicy`])
//! models the paper's real-time constraint: before each analysis the
//! driver estimates the cycle's modeled wall time (α–β collective model +
//! the GCD compute-rate model, scaled by scripted stragglers) and degrades
//! deterministically — full analysis → reduced SDE step count → forecast
//! only. A post-hoc watchdog flags cycles whose *actual* modeled time
//! (including shrink-retry redo costs) blew the budget, with a
//! flight-recorder postmortem. All decisions are pure functions of
//! `(cycle, membership, scripts, config)`, replicated on every rank, so
//! the degraded trajectory remains bitwise reproducible.

use crate::analysis::{model_collective, CommStats, DistObs};
use crate::cycle::{dist_obs_for, DistCycleConfig};
use crate::shard::ShardPlan;
use crate::DistError;
use da_core::osse::{initial_ensemble, nature_run, CycleSeries, NatureRun};
use da_core::resilience::{Checkpoint, CheckpointConfig, FaultPlan, LoopState, RecoveryCounters};
use da_core::{ForecastModel, SqgForecast};
use ensf::{EnsfConfig, TimeGrid};
use hpc::mpi::{run_world, Comm};
use hpc::{collective_time, shard_step_compute_secs, Collective, MpiError, StragglerPlan};
use stats::Ensemble;
use std::time::Duration;
use telemetry::flight::{dump_postmortem, flight_record, FlightKind};

/// How long a dead rank waits for its rejoin grant before giving up. Real
/// wall-clock (the watchdog of last resort), sized far above any test or
/// bench cycle time.
const GRANT_WAIT: Duration = Duration::from_secs(60);

/// Per-cycle real-time budget and the degraded-analysis ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    /// Modeled seconds one cycle's analysis may cost.
    pub budget_secs: f64,
    /// SDE step count of the degraded analysis (rung two of the ladder;
    /// rung three drops the analysis entirely).
    pub degraded_steps: usize,
}

/// What the deadline ladder chose for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleMode {
    /// Full-resolution analysis (`ensf.n_steps`).
    Full,
    /// Reduced SDE step count ([`DeadlinePolicy::degraded_steps`]).
    Degraded,
    /// No assimilation: the forecast is carried forward unchanged.
    ForecastOnly,
}

/// How one rank's elastic run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticOutcome {
    /// Ran every cycle (possibly after dying and rejoining).
    Completed,
    /// Killed at `at_cycle` and never rejoined.
    Died {
        /// Cycle during whose analysis the rank died.
        at_cycle: usize,
    },
}

/// Recovery accounting of one elastic run (per rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElasticCounters {
    /// Ranks shrunk away (one per dead rank excluded from the group).
    pub shrinks: u64,
    /// Group re-expansions this rank participated in (or performed).
    pub rejoins: u64,
    /// Analyses redone from the replicated forecast after a shrink.
    pub redone_analyses: u64,
    /// Cycles that ran the reduced-step analysis.
    pub degraded_cycles: u64,
    /// Cycles that dropped the analysis entirely.
    pub forecast_only_cycles: u64,
    /// Cycles whose actual modeled time blew the budget post hoc.
    pub deadline_blown: u64,
}

/// Configuration of one elastic distributed experiment.
#[derive(Debug, Clone)]
pub struct ElasticCycleConfig {
    /// The underlying distributed experiment (grid, filter, tile, network).
    pub base: DistCycleConfig,
    /// Scripted rank kills and rejoins ([`FaultPlan::rank_kills`] /
    /// [`FaultPlan::rank_rejoins`]; the member/obs/analysis fault channels
    /// are ignored by this driver).
    pub faults: FaultPlan,
    /// Scripted per-rank slowdowns applied to the modeled cycle time.
    pub stragglers: StragglerPlan,
    /// Per-cycle deadline budget; `None` never degrades.
    pub deadline: Option<DeadlinePolicy>,
    /// Checkpointing (written by world rank 0 at cycle boundaries).
    /// Required when any rejoin is scripted.
    pub checkpoint: Option<CheckpointConfig>,
}

impl ElasticCycleConfig {
    /// An elastic wrapper around `base` with no faults, no stragglers, no
    /// deadline and no checkpointing — behaviorally identical to
    /// [`crate::run_dist_experiment`].
    pub fn clean(base: DistCycleConfig) -> Self {
        ElasticCycleConfig {
            base,
            faults: FaultPlan::none(),
            stragglers: StragglerPlan::none(),
            deadline: None,
            checkpoint: None,
        }
    }
}

/// Result of one rank's elastic run.
#[derive(Debug, Clone)]
pub struct ElasticRunResult {
    /// Whether this rank survived to the end.
    pub outcome: ElasticOutcome,
    /// Verification series over the cycles this rank completed (for a
    /// rejoiner the pre-death prefix comes from the checkpoint, so a
    /// completed rank's series always spans the full run).
    pub series: CycleSeries,
    /// `(cycle, analysis mean)` for every cycle this rank completed — the
    /// bitwise fingerprint compared across ranks and against fresh runs.
    pub cycle_means: Vec<(usize, Vec<f64>)>,
    /// `(cycle, mode)` the deadline ladder chose per completed cycle.
    pub modes: Vec<(usize, CycleMode)>,
    /// `(cycle, group size)` after each completed cycle.
    pub group_sizes: Vec<(usize, usize)>,
    /// Cycles whose analysis completed in full or degraded mode within the
    /// modeled budget (equals `deadline_total` without a deadline policy).
    pub deadline_hits: usize,
    /// Cycles this rank completed (the hit-rate denominator).
    pub deadline_total: usize,
    /// Recovery accounting.
    pub counters: ElasticCounters,
    /// Final ensemble as this rank saw it.
    pub ensemble: Ensemble,
    /// Collective accounting for this rank.
    pub stats: CommStats,
}

/// Modeled wall time of one sharded analysis at `ranks` ranks with `steps`
/// SDE steps — the pure estimator behind the deadline ladder. Compute uses
/// the GCD-rate model on the widest rank block; communication prices each
/// per-step partial exchange plus the block gather with the α–β model
/// (zero without a [`crate::CommSpec`]).
pub fn modeled_analysis_secs(
    base: &DistCycleConfig,
    dim: usize,
    members: usize,
    steps: usize,
    ranks: usize,
) -> f64 {
    let plan = ShardPlan::new(dim, base.tile, ranks);
    let local_max = (0..ranks)
        .map(|r| {
            let (lo, hi) = plan.rank_range(r);
            hi - lo
        })
        .max()
        .unwrap_or(0);
    let compute = steps as f64 * shard_step_compute_secs(members, local_max);
    let comm = base
        .comm
        .as_ref()
        .map(|spec| {
            let batch = base.ensf.minibatch.filter(|&j| j < members).unwrap_or(members);
            let partial_bytes = (plan.n_tiles() * members * batch * 8) as u64;
            let block_bytes = (members * dim * 8) as u64;
            steps as f64 * collective_time(&spec.topo, Collective::AllGather, ranks, partial_bytes)
                + collective_time(&spec.topo, Collective::AllGather, ranks, block_bytes)
        })
        .unwrap_or(0.0);
    compute + comm
}

/// The deadline ladder: picks the most capable mode whose modeled cost
/// (straggler-scaled) fits the budget. Pure in `(config, cycle, group)`,
/// so every rank lands on the same rung.
fn decide_mode(
    config: &ElasticCycleConfig,
    dim: usize,
    members: usize,
    cycle: usize,
    group: &[usize],
) -> CycleMode {
    let Some(policy) = &config.deadline else {
        return CycleMode::Full;
    };
    let slow = config.stragglers.worst(cycle, group);
    let full = modeled_analysis_secs(&config.base, dim, members, config.base.ensf.n_steps, group.len());
    if full * slow <= policy.budget_secs {
        return CycleMode::Full;
    }
    let degraded =
        modeled_analysis_secs(&config.base, dim, members, policy.degraded_steps, group.len());
    if degraded * slow <= policy.budget_secs {
        CycleMode::Degraded
    } else {
        CycleMode::ForecastOnly
    }
}

/// One sharded analysis attempt with optional scripted suicide: when
/// `kill_after = Some(n)` this rank registers itself dead after completing
/// `n` partial exchanges (before the reassembly gather when `n` exceeds
/// the step count) and returns `Ok(None)`. A peer dying mid-exchange
/// surfaces as `Err(DistError::Mpi(..))`.
#[allow(clippy::too_many_arguments)]
fn elastic_analyze(
    comm: &Comm,
    plan: &ShardPlan,
    config: &EnsfConfig,
    cycle: u64,
    forecast: &Ensemble,
    y: &[f64],
    obs: &DistObs,
    spec: Option<&crate::CommSpec>,
    stats: &mut CommStats,
    kill_after: Option<usize>,
) -> Result<Option<Vec<f64>>, DistError> {
    let mut kernel =
        crate::ShardKernel::new(plan, comm.rank(), config, cycle, forecast, y, obs);
    let times = TimeGrid::LogSpaced.points(&config.schedule, config.n_steps);
    let exchanged_bytes = (kernel.n_tiles() * kernel.partials_per_tile() * 8) as u64;
    for (step, win) in times.windows(2).enumerate() {
        if kill_after == Some(step) {
            comm.kill();
            return Ok(None);
        }
        let partials = kernel.tile_partials(win[0]);
        model_collective(spec, stats, Collective::AllGather, comm.size(), exchanged_bytes)?;
        let full = comm.try_allgather_concat(partials)?;
        kernel.apply_step(win[0], win[1], &full);
    }
    if kill_after.is_some() {
        comm.kill();
        return Ok(None);
    }
    Ok(Some(kernel.finish()))
}

/// What a dead rank does next.
enum AfterDeath {
    /// No rejoin scripted (or the grant/restore failed): stay dead.
    Gone,
    /// Re-admitted: resume cycling from the checkpoint at `generation`.
    Resume {
        checkpoint: Box<Checkpoint>,
        generation: u64,
    },
}

/// Parks a dead rank until its scripted rejoin grant arrives (or forever
/// isn't an option: a generous real-time deadline turns a missing grant
/// into [`AfterDeath::Gone`]). On a grant, loads and validates the
/// checkpoint; a bad checkpoint re-kills the rank so the survivors shrink
/// it away again instead of hanging on it.
fn dead_wait(
    comm: &Comm,
    config: &ElasticCycleConfig,
    died_at: usize,
    cycles: usize,
) -> AfterDeath {
    let me = comm.world_rank();
    let world = comm.world_size();
    let Some(rejoin) = config
        .faults
        .rank_rejoins
        .iter()
        .filter(|r| r.rank == me && r.cycle > died_at && r.cycle < cycles)
        .min_by_key(|r| r.cycle)
    else {
        return AfterDeath::Gone;
    };
    // The grantor is the lowest world rank alive at the rejoin cycle that
    // is not itself rejoining then — a pure function of the script, so the
    // rejoiner and the survivors agree without communicating.
    let mut members = config.faults.membership_at(rejoin.cycle, world);
    members.retain(|&r| {
        !config.faults.rank_rejoins.iter().any(|j| j.rank == r && j.cycle == rejoin.cycle)
    });
    let Some(&coordinator) = members.first() else {
        return AfterDeath::Gone;
    };
    comm.set_recv_deadline(Some(GRANT_WAIT));
    let grant = comm.recv_grant(coordinator);
    comm.set_recv_deadline(None);
    let Ok(grant) = grant else {
        return AfterDeath::Gone;
    };
    let generation = grant.first().copied().unwrap_or(0.0) as u64;
    let at_cycle = grant.get(1).copied().unwrap_or(0.0) as usize;
    let checkpoint = config
        .checkpoint
        .as_ref()
        .and_then(|ck| Checkpoint::load(&ck.path).ok())
        .filter(|ck| ck.cycle == at_cycle);
    let Some(checkpoint) = checkpoint else {
        // Can't restore bit-identical state: die again. The survivors'
        // next collective sees RankDead and shrinks us away.
        comm.kill();
        return AfterDeath::Gone;
    };
    let new_members = config.faults.membership_at(at_cycle, world);
    comm.recover(&new_members, generation);
    AfterDeath::Resume { checkpoint: Box::new(checkpoint), generation }
}

fn validate(config: &ElasticCycleConfig, world: usize, cycles: usize) -> Result<(), DistError> {
    for k in &config.faults.rank_kills {
        if k.rank == 0 {
            return Err(DistError::Config(
                "world rank 0 is the coordinator and must not be killed".into(),
            ));
        }
        if k.rank >= world {
            return Err(DistError::Config(format!(
                "scripted kill of rank {} in a {world}-rank world",
                k.rank
            )));
        }
        if k.cycle >= cycles {
            return Err(DistError::Config(format!(
                "scripted kill at cycle {} of a {cycles}-cycle run",
                k.cycle
            )));
        }
    }
    for r in &config.faults.rank_rejoins {
        if r.rank >= world {
            return Err(DistError::Config(format!(
                "scripted rejoin of rank {} in a {world}-rank world",
                r.rank
            )));
        }
        let killed_before = config
            .faults
            .rank_kills
            .iter()
            .any(|k| k.rank == r.rank && k.cycle < r.cycle);
        if !killed_before {
            return Err(DistError::Config(format!(
                "rejoin of rank {} at cycle {} without a preceding kill",
                r.rank, r.cycle
            )));
        }
        if config.checkpoint.is_none() {
            return Err(DistError::Config(
                "rank rejoin requires checkpointing (ElasticCycleConfig::checkpoint)".into(),
            ));
        }
    }
    if let Some(p) = &config.deadline {
        if p.budget_secs <= 0.0 || p.budget_secs.is_nan() {
            return Err(DistError::Config("deadline budget must be positive".into()));
        }
        if p.degraded_steps == 0 || p.degraded_steps >= config.base.ensf.n_steps {
            return Err(DistError::Config(format!(
                "degraded step count {} must be in 1..{}",
                p.degraded_steps, config.base.ensf.n_steps
            )));
        }
    }
    Ok(())
}

/// Runs one elastic distributed OSSE experiment on this rank.
///
/// Equivalent to [`crate::run_dist_experiment`] when `config` scripts no
/// faults, stragglers or deadline; see the module docs for what each
/// machinery adds. Every rank receives the same configuration and nature
/// run; ranks that die and never rejoin return
/// [`ElasticOutcome::Died`] with their partial trajectory.
///
/// # Errors
/// [`DistError::Config`] for invalid scripts or mismatched inputs;
/// [`DistError::Mpi`] only for fault patterns the recovery cannot absorb.
pub fn run_elastic_experiment(
    comm: &Comm,
    config: &ElasticCycleConfig,
    nature: &NatureRun,
) -> Result<ElasticRunResult, DistError> {
    run_elastic_from(comm, config, nature, None)
}

/// [`run_elastic_experiment`] starting from a checkpoint: cycles before
/// `resume.cycle` are taken as already completed (their series entries come
/// from the checkpoint) and cycling continues bit-identically from the
/// checkpointed ensemble — the entry point behind both the rank-rejoin
/// restore and the shrink-determinism harness.
///
/// # Errors
/// As [`run_elastic_experiment`].
pub fn run_elastic_from(
    comm: &Comm,
    config: &ElasticCycleConfig,
    nature: &NatureRun,
    resume: Option<&Checkpoint>,
) -> Result<ElasticRunResult, DistError> {
    let Some(truth0) = nature.truth.first() else {
        return Err(DistError::Config("empty nature run".into()));
    };
    let dim = config.base.osse.params.state_dim();
    if truth0.len() != dim {
        return Err(DistError::Config(format!(
            "nature run dimension {} does not match model dimension {dim}",
            truth0.len()
        )));
    }
    let cycles = config.base.osse.cycles;
    if nature.observations.len() < cycles {
        return Err(DistError::Config(format!(
            "nature run provides {} observations for {cycles} cycles",
            nature.observations.len()
        )));
    }
    if config.base.tile == 0 {
        return Err(DistError::Config("tile width must be positive".into()));
    }
    if let Err(msg) = config.base.ensf.validate() {
        return Err(DistError::Config(msg));
    }
    validate(config, comm.world_size(), cycles)?;

    let me = comm.world_rank();
    let world = comm.world_size();
    let obs = dist_obs_for(&config.base.osse);
    let spec = config.base.comm.as_ref();
    let members = config.base.osse.ens_size;
    let mut model = SqgForecast::perfect(config.base.osse.params.clone());

    let mut generation = comm.epoch();
    let mut counters = ElasticCounters::default();
    let mut stats = CommStats::default();
    let mut state = LoopState::Healthy;
    let mut outcome = ElasticOutcome::Completed;

    let (mut cycle, mut ensemble, mut hours, mut rmse, mut spread) = match resume {
        Some(ck) => {
            if ck.ensemble.dim() != dim {
                return Err(DistError::Config("checkpoint dimension mismatch".into()));
            }
            state = ck.state;
            (ck.cycle, ck.ensemble.clone(), ck.hours.clone(), ck.rmse.clone(), ck.spread.clone())
        }
        None => (0, initial_ensemble(&config.base.osse, truth0), Vec::new(), Vec::new(), Vec::new()),
    };
    let mut cycle_means: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut modes: Vec<(usize, CycleMode)> = Vec::new();
    let mut group_sizes: Vec<(usize, usize)> = Vec::new();
    let mut deadline_hits = 0usize;
    let mut deadline_total = 0usize;

    'cycling: while cycle < cycles {
        let _span = telemetry::span!("elastic.cycle");
        // Telemetry leadership: world rank 0 speaks for the (replicated)
        // world so counters and the flight ring aren't inflated ×ranks.
        // Validation pins rank 0 alive, so the lead never changes hands.
        let lead = me == 0 && telemetry::enabled();
        let mut events: Vec<String> = Vec::new();

        // --- Rejoin admission at the start of the cycle (survivor side).
        let admitting: Vec<usize> = {
            let group = comm.group();
            config
                .faults
                .rank_rejoins
                .iter()
                .filter(|r| r.cycle == cycle && r.rank != me && !group.contains(&r.rank))
                .map(|r| r.rank)
                .collect()
        };
        if !admitting.is_empty() {
            generation += 1;
            if comm.rank() == 0 {
                for &r in &admitting {
                    comm.revive(r);
                    comm.send_grant(r, &[generation as f64, cycle as f64]);
                }
            }
            let new_members = config.faults.membership_at(cycle, world);
            comm.recover(&new_members, generation);
            counters.rejoins += admitting.len() as u64;
            events.push("rank_rejoin".to_string());
            if lead {
                telemetry::counter_add("elastic.rejoins", admitting.len() as u64);
                for &r in &admitting {
                    flight_record(
                        FlightKind::RankRejoin,
                        cycle as i64,
                        "rank_rejoin",
                        r as f64,
                        comm.size() as f64,
                    );
                }
            }
        }

        // --- Replicated forecast.
        model.forecast_ensemble(&mut ensemble, config.base.osse.obs_interval_hours);
        let y = &nature.observations[cycle];
        let pre_diag = lead.then(|| {
            da_core::diagnostics::forecast_stats_masked(
                &ensemble,
                y,
                config.base.osse.obs_sigma,
                config.base.osse.obs_operator,
                config.base.osse.obs_mask,
                cycle as u64,
            )
        });

        let my_kill = config.faults.rank_kill_at(cycle, me);
        let mut modeled_secs = 0.0;
        let mut mode;

        // --- Analysis with shrink-retry. Each attempt re-evaluates the
        // deadline ladder at the current group size, so a redone cycle
        // matches what a fresh run at the survivor count would decide.
        loop {
            let group = comm.group();
            let slow = config.stragglers.worst(cycle, &group);
            mode = decide_mode(config, dim, members, cycle, &group);
            if mode == CycleMode::ForecastOnly {
                if my_kill.is_some() {
                    comm.kill();
                    match dead_wait(comm, config, cycle, cycles) {
                        AfterDeath::Gone => {
                            outcome = ElasticOutcome::Died { at_cycle: cycle };
                            break 'cycling;
                        }
                        AfterDeath::Resume { checkpoint, generation: g } => {
                            generation = g;
                            cycle = checkpoint.cycle;
                            ensemble = checkpoint.ensemble.clone();
                            hours = checkpoint.hours.clone();
                            rmse = checkpoint.rmse.clone();
                            spread = checkpoint.spread.clone();
                            state = checkpoint.state;
                            counters.rejoins += 1;
                            continue 'cycling;
                        }
                    }
                }
                break;
            }
            let steps = match mode {
                CycleMode::Full => config.base.ensf.n_steps,
                CycleMode::Degraded => {
                    // INVARIANT: Degraded only arises with a policy.
                    config.deadline.as_ref().unwrap().degraded_steps
                }
                CycleMode::ForecastOnly => unreachable!("handled above"),
            };
            modeled_secs += slow * modeled_analysis_secs(&config.base, dim, members, steps, group.len());
            let ensf_cfg = EnsfConfig { n_steps: steps, ..config.base.ensf.clone() };
            let plan = ShardPlan::new(dim, config.base.tile, comm.size());
            let attempt = elastic_analyze(
                comm,
                &plan,
                &ensf_cfg,
                cycle as u64,
                &ensemble,
                y,
                &obs,
                spec,
                &mut stats,
                my_kill.map(|k| k.after_steps),
            );
            // A scheduled victim that observes the epoch collapsing (a
            // same-cycle peer died first and the survivors excluded it)
            // simply dies now instead of retrying.
            let i_die_now = my_kill.is_some()
                && matches!(
                    attempt,
                    Err(DistError::Mpi(MpiError::RankDead { .. } | MpiError::Revoked))
                );
            if i_die_now {
                comm.kill();
            }
            match attempt {
                Ok(Some(local)) => {
                    model_collective(
                        spec,
                        &mut stats,
                        Collective::AllGather,
                        comm.size(),
                        (members * dim * 8) as u64,
                    )?;
                    match comm.try_allgather(&local) {
                        Ok(blocks) => {
                            for (r, block) in blocks.iter().enumerate() {
                                let (lo, hi) = plan.rank_range(r);
                                let len = hi - lo;
                                for p in 0..members {
                                    ensemble.member_mut(p)[lo..hi]
                                        .copy_from_slice(&block[p * len..(p + 1) * len]);
                                }
                            }
                            break;
                        }
                        Err(MpiError::RankDead { .. }) => {
                            comm.revoke();
                            shrink(comm, config, cycle, &mut generation, &mut counters, &mut events, lead);
                        }
                        Err(MpiError::Revoked) => {
                            shrink(comm, config, cycle, &mut generation, &mut counters, &mut events, lead);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(None) | Err(DistError::Mpi(MpiError::RankDead { .. } | MpiError::Revoked))
                    if my_kill.is_some() =>
                {
                    // Ok(None): scripted death point reached. Errors: this
                    // victim was shrunk away first (killed above).
                    match dead_wait(comm, config, cycle, cycles) {
                        AfterDeath::Gone => {
                            outcome = ElasticOutcome::Died { at_cycle: cycle };
                            break 'cycling;
                        }
                        AfterDeath::Resume { checkpoint, generation: g } => {
                            generation = g;
                            cycle = checkpoint.cycle;
                            ensemble = checkpoint.ensemble.clone();
                            hours = checkpoint.hours.clone();
                            rmse = checkpoint.rmse.clone();
                            spread = checkpoint.spread.clone();
                            state = checkpoint.state;
                            counters.rejoins += 1;
                            continue 'cycling;
                        }
                    }
                }
                Ok(None) => unreachable!("elastic_analyze returns None only for a victim"),
                Err(DistError::Mpi(MpiError::RankDead { .. })) => {
                    comm.revoke();
                    shrink(comm, config, cycle, &mut generation, &mut counters, &mut events, lead);
                }
                Err(DistError::Mpi(MpiError::Revoked)) => {
                    shrink(comm, config, cycle, &mut generation, &mut counters, &mut events, lead);
                }
                Err(e) => return Err(e),
            }
        }

        // --- Cycle epilogue (survivors only).
        match mode {
            CycleMode::Degraded => {
                counters.degraded_cycles += 1;
                events.push("deadline_degraded".to_string());
            }
            CycleMode::ForecastOnly => {
                counters.forecast_only_cycles += 1;
                events.push("deadline_forecast_only".to_string());
            }
            CycleMode::Full => {}
        }
        let blown = config.deadline.as_ref().is_some_and(|p| modeled_secs > p.budget_secs);
        if blown {
            counters.deadline_blown += 1;
            events.push("deadline_blown".to_string());
        }
        deadline_total += 1;
        if mode != CycleMode::ForecastOnly && !blown {
            deadline_hits += 1;
        }

        let mean = ensemble.mean();
        hours.push((cycle + 1) as f64 * config.base.osse.obs_interval_hours);
        rmse.push(stats::metrics::rmse(&mean, &nature.truth[cycle + 1]));
        spread.push(ensemble.spread());
        let prev_state = state;
        state = if events.is_empty() {
            match state {
                LoopState::Degraded => LoopState::Recovering,
                LoopState::Recovering | LoopState::Healthy => LoopState::Healthy,
            }
        } else {
            LoopState::Degraded
        };

        if lead {
            telemetry::counter_add("elastic.cycles", 1);
            if let Some(p) = &config.deadline {
                if mode == CycleMode::Degraded {
                    flight_record(
                        FlightKind::Deadline,
                        cycle as i64,
                        "deadline_degraded",
                        modeled_secs,
                        p.budget_secs,
                    );
                    telemetry::counter_add("elastic.deadline.degraded", 1);
                }
                if mode == CycleMode::ForecastOnly {
                    flight_record(
                        FlightKind::Deadline,
                        cycle as i64,
                        "deadline_forecast_only",
                        modeled_secs,
                        p.budget_secs,
                    );
                    telemetry::counter_add("elastic.deadline.forecast_only", 1);
                }
                if blown {
                    flight_record(
                        FlightKind::Deadline,
                        cycle as i64,
                        "deadline_blown",
                        modeled_secs,
                        p.budget_secs,
                    );
                    telemetry::counter_add("elastic.deadline.blown", 1);
                }
            }
            if prev_state != state {
                flight_record(
                    FlightKind::Transition,
                    cycle as i64,
                    &format!("{prev_state:?}->{state:?}"),
                    0.0,
                    0.0,
                );
            }
            if let Some(pre) = &pre_diag {
                // INVARIANT: pushed immediately above.
                let cycle_rmse = *rmse.last().unwrap();
                let diagnostics = da_core::diagnostics::complete_masked(
                    pre,
                    &ensemble,
                    y,
                    cycle_rmse,
                    config.base.osse.obs_operator,
                    config.base.osse.obs_mask,
                    cycle as u64,
                );
                telemetry::record_cycle(telemetry::CycleRecord {
                    label: format!("elastic@{}r", comm.size()),
                    cycle,
                    // INVARIANT: pushed immediately above.
                    hours: *hours.last().unwrap(),
                    rmse: cycle_rmse,
                    // INVARIANT: pushed immediately above.
                    spread: *spread.last().unwrap(),
                    obs_count: y.len(),
                    phases: vec![("analysis_modeled".to_string(), modeled_secs)],
                    events: events.clone(),
                    diagnostics: Some(diagnostics),
                });
            }
            // Postmortems after the cycle record, so the black box contains
            // the degrading cycle's own diagnostics.
            if events.iter().any(|e| e == "rank_dead_shrink") {
                dump_postmortem("rank_dead_shrink");
            }
            if blown {
                dump_postmortem("deadline_blown");
            }
        }
        cycle_means.push((cycle, mean));
        modes.push((cycle, mode));
        group_sizes.push((cycle, comm.size()));

        // --- Checkpoint at the boundary (coordinator only), forced when
        // the next cycle admits a rejoiner: the grant is only sent after
        // this write, so the restored state is always the boundary state.
        if let Some(ckcfg) = &config.checkpoint {
            let rejoin_next =
                config.faults.rank_rejoins.iter().any(|r| r.cycle == cycle + 1);
            let due = (ckcfg.every > 0 && (cycle + 1) % ckcfg.every == 0) || rejoin_next;
            if due && me == 0 {
                let ck = Checkpoint {
                    cycle: cycle + 1,
                    state,
                    scheme_epoch: (cycle + 1) as u64,
                    scheme_seed: config.base.ensf.seed,
                    ensemble: ensemble.clone(),
                    // INVARIANT: mean pushed into cycle_means above.
                    prev_mean: cycle_means.last().unwrap().1.clone(),
                    hours: hours.clone(),
                    rmse: rmse.clone(),
                    spread: spread.clone(),
                    counters: RecoveryCounters::default(),
                    model_state: None,
                };
                ck.save(&ckcfg.path)
                    .map_err(|e| DistError::Config(format!("checkpoint write failed: {e}")))?;
            }
        }
        cycle += 1;
    }

    let final_mean =
        cycle_means.last().map(|(_, m)| m.clone()).unwrap_or_else(|| ensemble.mean());
    Ok(ElasticRunResult {
        outcome,
        series: CycleSeries {
            label: format!("elastic@{world}w"),
            hours,
            rmse,
            spread,
            final_mean,
        },
        cycle_means,
        modes,
        group_sizes,
        deadline_hits,
        deadline_total,
        counters,
        ensemble,
        stats,
    })
}

/// Shrinks the group to the survivors of this cycle's scripted kills (plus
/// anything registered dead out of script, e.g. a failed rejoiner). Every
/// survivor computes the same set from the same script, so the recovery
/// needs no agreement round.
fn shrink(
    comm: &Comm,
    config: &ElasticCycleConfig,
    cycle: usize,
    generation: &mut u64,
    counters: &mut ElasticCounters,
    events: &mut Vec<String>,
    lead: bool,
) {
    let group = comm.group();
    let survivors: Vec<usize> = group
        .iter()
        .copied()
        .filter(|&r| config.faults.rank_kill_at(cycle, r).is_none() && comm.is_alive(r))
        .collect();
    let excluded = group.len() - survivors.len();
    *generation += 1;
    comm.recover(&survivors, *generation);
    counters.shrinks += excluded as u64;
    counters.redone_analyses += 1;
    if !events.iter().any(|e| e == "rank_dead_shrink") {
        events.push("rank_dead_shrink".to_string());
    }
    if lead {
        telemetry::counter_add("elastic.shrinks", excluded as u64);
        telemetry::counter_add("elastic.redone_analyses", 1);
        flight_record(
            FlightKind::CollectiveShrink,
            cycle as i64,
            "rank_dead_shrink",
            survivors.len() as f64,
            excluded as f64,
        );
    }
}

/// Convenience driver: spins up `ranks` simulated MPI ranks, runs the
/// elastic experiment on each, asserts that every rank's trajectory agrees
/// bitwise on commonly-completed cycles, and returns world rank 0's result
/// (rank 0 is validated never to die, so its trajectory spans the run).
///
/// # Errors
/// Propagates the per-rank [`DistError`].
///
/// # Panics
/// Panics if surviving ranks disagree on the analysis trajectory — a
/// broken determinism invariant, not a user error.
pub fn run_elastic_osse(
    config: &ElasticCycleConfig,
    ranks: usize,
) -> Result<ElasticRunResult, DistError> {
    let nature = nature_run(&config.base.osse);
    let mut results = run_world(ranks, |comm| run_elastic_experiment(comm, config, &nature));
    let first = results.remove(0)?;
    for (i, result) in results.into_iter().enumerate() {
        let result = result?;
        for (c, mean) in &result.cycle_means {
            if let Some((_, m0)) = first.cycle_means.iter().find(|(c0, _)| c0 == c) {
                let bits: Vec<u64> = mean.iter().map(|v| v.to_bits()).collect();
                let bits0: Vec<u64> = m0.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    bits, bits0,
                    "rank {} disagrees with rank 0 at cycle {c}",
                    i + 1
                );
            }
        }
        if result.outcome == ElasticOutcome::Completed {
            assert_eq!(
                result.ensemble.as_slice(),
                first.ensemble.as_slice(),
                "surviving rank {} disagrees with rank 0 on the final ensemble",
                i + 1
            );
        }
    }
    Ok(first)
}

/// [`run_elastic_osse`] resuming every rank from `checkpoint` — the
/// fresh-run-at-R′-ranks reference the shrink-determinism tests compare
/// against.
///
/// # Errors
/// Propagates the per-rank [`DistError`].
///
/// # Panics
/// As [`run_elastic_osse`].
pub fn run_elastic_osse_from(
    config: &ElasticCycleConfig,
    ranks: usize,
    checkpoint: &Checkpoint,
) -> Result<ElasticRunResult, DistError> {
    let nature = nature_run(&config.base.osse);
    let mut results =
        run_world(ranks, |comm| run_elastic_from(comm, config, &nature, Some(checkpoint)));
    let first = results.remove(0)?;
    for (i, result) in results.into_iter().enumerate() {
        let result = result?;
        assert_eq!(
            result.cycle_means, first.cycle_means,
            "rank {} disagrees with rank 0 on the resumed trajectory",
            i + 1
        );
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_core::osse::OsseConfig;
    use da_core::resilience::RankKill;
    use sqg::SqgParams;

    /// Reduced grid (d = 512, 8 tiles of 64), mirroring the cycle tests.
    fn tiny_config(cycles: usize) -> ElasticCycleConfig {
        ElasticCycleConfig::clean(DistCycleConfig {
            osse: OsseConfig {
                params: SqgParams { n: 16, ..Default::default() },
                cycles,
                obs_sigma: 0.005,
                ens_size: 8,
                ic_sigma: 0.01,
                spinup_steps: 40,
                seed: 3,
                ..Default::default()
            },
            ensf: EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
            ..Default::default()
        })
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sqg_da_elastic_{name}.ckpt"))
    }

    #[test]
    fn clean_elastic_run_matches_plain_dist_run() {
        let config = tiny_config(2);
        let plain = crate::run_osse(&config.base, 4).unwrap();
        let elastic = run_elastic_osse(&config, 4).unwrap();
        assert_eq!(elastic.outcome, ElasticOutcome::Completed);
        let means: Vec<&Vec<f64>> = elastic.cycle_means.iter().map(|(_, m)| m).collect();
        for (c, (a, b)) in plain.cycle_means.iter().zip(&means).enumerate() {
            assert_eq!(a, *b, "clean elastic run diverged from dist run at cycle {c}");
        }
        assert_eq!(plain.ensemble.as_slice(), elastic.ensemble.as_slice());
        assert_eq!(elastic.deadline_hits, elastic.deadline_total);
    }

    #[test]
    fn killed_rank_shrinks_group_and_trajectory_matches_survivor_count() {
        let mut config = tiny_config(3);
        config.faults.rank_kills.push(RankKill { cycle: 1, rank: 2, after_steps: 4 });
        let faulted = run_elastic_osse(&config, 3).unwrap();
        assert_eq!(faulted.outcome, ElasticOutcome::Completed);
        assert_eq!(faulted.counters.shrinks, 1);
        assert_eq!(faulted.counters.redone_analyses, 1);
        assert_eq!(faulted.group_sizes, vec![(0, 3), (1, 2), (2, 2)]);

        // Bitwise: cycle 0 matches a clean 3-rank run, cycles 1.. match a
        // clean 2-rank run (rank-count invariance makes them all equal).
        let clean = run_elastic_osse(&tiny_config(3), 2).unwrap();
        for ((c, a), (c2, b)) in faulted.cycle_means.iter().zip(&clean.cycle_means) {
            assert_eq!(c, c2);
            let bits_a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "post-shrink cycle {c} diverged from 2-rank run");
        }
    }

    #[test]
    fn kill_during_final_gather_is_survived() {
        let mut config = tiny_config(2);
        // after_steps beyond the SDE step count: dies before reassembly.
        config.faults.rank_kills.push(RankKill { cycle: 0, rank: 1, after_steps: 99 });
        let result = run_elastic_osse(&config, 2).unwrap();
        assert_eq!(result.counters.shrinks, 1);
        assert_eq!(result.group_sizes.last(), Some(&(1, 1)));
    }

    #[test]
    fn rejoin_restores_full_group_bitwise() {
        let path = ckpt_path("rejoin");
        let mut config = tiny_config(4);
        config.faults.rank_kills.push(RankKill { cycle: 1, rank: 1, after_steps: 2 });
        config
            .faults
            .rank_rejoins
            .push(da_core::resilience::RankRejoin { cycle: 3, rank: 1 });
        config.checkpoint = Some(CheckpointConfig { path: path.clone(), every: 1 });

        let nature = nature_run(&config.base.osse);
        let results = run_world(2, |comm| run_elastic_experiment(comm, &config, &nature));
        let r0 = results[0].as_ref().unwrap();
        let r1 = results[1].as_ref().unwrap();
        assert_eq!(r0.outcome, ElasticOutcome::Completed);
        assert_eq!(r1.outcome, ElasticOutcome::Completed, "rank 1 must rejoin and finish");
        assert_eq!(r0.group_sizes, vec![(0, 2), (1, 1), (2, 1), (3, 2)]);
        // The rejoiner's resumed trajectory matches the survivor's bitwise,
        // including the full series prefix restored from the checkpoint.
        assert_eq!(r0.series.rmse, r1.series.rmse);
        assert_eq!(r0.ensemble.as_slice(), r1.ensemble.as_slice());
        let r1_cycles: Vec<usize> = r1.cycle_means.iter().map(|&(c, _)| c).collect();
        assert_eq!(
            r1_cycles,
            vec![0, 3],
            "rejoiner computes its pre-death and post-rejoin cycles, skipping the dead gap"
        );
        for (c, mean) in &r1.cycle_means {
            let (_, m0) = r0.cycle_means.iter().find(|(c0, _)| c0 == c).unwrap();
            assert_eq!(mean, m0, "rejoiner disagrees with survivor at cycle {c}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deadline_ladder_degrades_then_recovers() {
        let mut config = tiny_config(3);
        config.base.comm = Some(crate::CommSpec::clean(2));
        // Straggler slows rank 1 by 50× in cycle 1 only; budget sits just
        // above the clean full-analysis estimate.
        let dim = config.base.osse.params.state_dim();
        let full = modeled_analysis_secs(&config.base, dim, 8, config.base.ensf.n_steps, 2);
        config.stragglers = StragglerPlan {
            events: vec![hpc::Straggler { rank: 1, from_cycle: 1, to_cycle: 1, slowdown: 50.0 }],
        };
        config.deadline = Some(DeadlinePolicy { budget_secs: full * 2.0, degraded_steps: 3 });
        let result = run_elastic_osse(&config, 2).unwrap();
        let modes: Vec<CycleMode> = result.modes.iter().map(|&(_, m)| m).collect();
        assert_eq!(modes[0], CycleMode::Full);
        assert_ne!(modes[1], CycleMode::Full, "50× straggler must force degradation");
        assert_eq!(modes[2], CycleMode::Full);
        assert!(result.counters.degraded_cycles + result.counters.forecast_only_cycles >= 1);
        assert!(result.series.rmse.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn forecast_only_cycle_counts_as_deadline_miss() {
        let mut config = tiny_config(2);
        config.base.comm = Some(crate::CommSpec::clean(2));
        let dim = config.base.osse.params.state_dim();
        let degraded = modeled_analysis_secs(&config.base, dim, 8, 3, 2);
        // Budget below even the degraded estimate: every cycle drops to
        // forecast-only and the hit-rate collapses to zero.
        config.deadline =
            Some(DeadlinePolicy { budget_secs: degraded * 0.5, degraded_steps: 3 });
        let result = run_elastic_osse(&config, 2).unwrap();
        assert_eq!(result.counters.forecast_only_cycles, 2);
        assert_eq!(result.deadline_hits, 0);
        assert_eq!(result.deadline_total, 2);
    }

    #[test]
    fn invalid_scripts_are_config_errors() {
        let mut kill0 = tiny_config(2);
        kill0.faults.rank_kills.push(RankKill { cycle: 0, rank: 0, after_steps: 0 });
        assert!(matches!(run_elastic_osse(&kill0, 2), Err(DistError::Config(_))));

        let mut orphan = tiny_config(4);
        orphan
            .faults
            .rank_rejoins
            .push(da_core::resilience::RankRejoin { cycle: 2, rank: 1 });
        assert!(matches!(run_elastic_osse(&orphan, 2), Err(DistError::Config(_))));

        let mut bad_deadline = tiny_config(2);
        bad_deadline.deadline = Some(DeadlinePolicy { budget_secs: 1.0, degraded_steps: 0 });
        assert!(matches!(run_elastic_osse(&bad_deadline, 2), Err(DistError::Config(_))));
    }

    #[test]
    fn resume_from_checkpoint_continues_bitwise() {
        let path = ckpt_path("resume");
        let mut with_ck = tiny_config(4);
        with_ck.checkpoint = Some(CheckpointConfig { path: path.clone(), every: 2 });
        let full = run_elastic_osse(&with_ck, 2).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.cycle, 4);

        // Re-run the first half, then resume the second half from its
        // boundary checkpoint; the tail must match the uninterrupted run.
        let mut half = tiny_config(4);
        half.checkpoint = Some(CheckpointConfig { path: path.clone(), every: 2 });
        let nature = nature_run(&half.base.osse);
        run_world(2, |comm| {
            let mut cfg = half.clone();
            cfg.base.osse.cycles = 2;
            run_elastic_experiment(comm, &cfg, &nature).unwrap()
        });
        let mid = Checkpoint::load(&path).unwrap();
        assert_eq!(mid.cycle, 2);
        let resumed = run_elastic_osse_from(&with_ck, 2, &mid).unwrap();
        for (c, mean) in &resumed.cycle_means {
            let (_, reference) =
                full.cycle_means.iter().find(|(c0, _)| c0 == c).expect("cycle in full run");
            let bits: Vec<u64> = mean.iter().map(|v| v.to_bits()).collect();
            let bits0: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, bits0, "resumed cycle {c} diverged");
        }
        assert_eq!(resumed.ensemble.as_slice(), full.ensemble.as_slice());
        std::fs::remove_file(&path).ok();
    }
}
