//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// Sized for the LETKF regime: ensemble transforms of order
/// `m x m` (m ≈ 20–100) and observation blocks of a few thousand rows. The
/// layout guarantee (`data[r * cols + c]`) is part of the public contract —
/// the GEMM kernels and the ViT crate rely on it.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Builds an `n x n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Populates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// `self + other` elementwise.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// `self - other` elementwise.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scales every entry in place.
    pub fn scale_mut(&mut self, a: f64) {
        for v in &mut self.data {
            *v *= a;
        }
    }

    /// Scaled copy `a * self`.
    pub fn scaled(&self, a: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(a);
        out
    }

    /// Adds `a` to each diagonal entry (square not required; uses
    /// `min(rows, cols)` entries).
    pub fn add_diag(&mut self, a: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += a;
        }
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for empty).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute off-diagonal entry (square matrices; 0 if n < 2).
    pub fn max_offdiag(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "max_offdiag requires a square matrix");
        let mut m = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    m = m.max(self[(r, c)].abs());
                }
            }
        }
        m
    }

    /// Symmetry defect `max |A - A^T|` (square matrices).
    pub fn symmetry_error(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "symmetry_error requires a square matrix");
        let mut m = 0.0f64;
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                m = m.max((self[(r, c)] - self[(c, r)]).abs());
            }
        }
        m
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);

        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(1, 0)], 0.0);

        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f[(1, 1)], 11.0);
    }

    #[test]
    fn rows_and_cols_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn elementwise_and_norms() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::identity(2);
        assert_eq!(a.add(&b)[(0, 0)], 2.0);
        assert_eq!(a.sub(&b)[(1, 1)], 3.0);
        assert!((a.norm_frobenius() - (30.0f64).sqrt()).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn diag_and_symmetry_helpers() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert_eq!(a.symmetry_error(), 0.0);
        assert_eq!(a.max_offdiag(), 2.0);
        a.add_diag(5.0);
        assert_eq!(a[(0, 0)], 6.0);
        a[(0, 1)] = 9.0;
        assert_eq!(a.symmetry_error(), 7.0);
    }

    #[test]
    fn from_rows_checks_raggedness() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    #[should_panic]
    fn from_vec_shape_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
