//! Matrix multiplication kernels.
//!
//! The hot entry points ([`matmul_slices_into`], [`matmul_abt_into`],
//! [`row_sq_norms`]) dispatch at runtime onto AVX-512 / AVX2+FMA
//! microkernels (see [`crate::simd`]) with the portable scalar loop nests
//! below as fallback and executable specification. The scalar path is a
//! cache-blocked i-k-j loop nest with the `k`-panel of `B` kept hot in
//! L1/L2; rows of `C` are parallelized with rayon above a size threshold.
//! The same kernel family backs the ViT crate's f32 tensors (it has its own
//! copy specialized to f32); here everything is f64 for the DA math.
//!
//! Whatever the dispatched level, every output element is a fixed-order
//! accumulation independent of row grouping and tile shape, so results are
//! run-to-run deterministic and partition-invariant within a process (the
//! EnSF rank-decomposition contract). Bits differ *across* SIMD levels —
//! nothing downstream assumes cross-machine bitwise equality.

use crate::matrix::Matrix;
use crate::simd;
use rayon::prelude::*;

/// Minimum `rows * cols * inner` product before the parallel path engages.
const PAR_FLOPS_THRESHOLD: usize = 64 * 64 * 64;

/// Cache block edge for the k dimension.
const KC: usize = 256;
/// Cache block edge for the j dimension.
const JC: usize = 128;

/// `C = A * B`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul: inner dimensions differ ({k} vs {kb})");
    let mut c = Matrix::zeros(m, n);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A * B` writing into a preallocated `c` (overwritten, not accumulated).
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_into: inner dimensions differ");
    assert_eq!(c.shape(), (m, n), "matmul_into: output shape mismatch");
    matmul_slices_into(a.as_slice(), b.as_slice(), m, k, n, c.as_mut_slice());
}

/// `C = A * B` on raw row-major slices: `a` is `m x k`, `b` is `k x n`,
/// `c` (overwritten) is `m x n`.
///
/// Every output element is accumulated as one `k`-ascending chain (FMA-fused
/// on the SIMD levels), so the result depends only on `(a, b)` — never on
/// how rows are grouped into parallel tasks or register tiles. This is the
/// determinism contract the EnSF batched kernel builds on. Zero
/// coefficients in `a` contribute exactly nothing for finite `b` (the
/// kernels skip them where profitable — e.g. a peaked softmax weight
/// matrix costs one row pass, not `k`).
pub fn matmul_slices_into(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "matmul_slices_into: a shape mismatch");
    assert_eq!(b.len(), k * n, "matmul_slices_into: b shape mismatch");
    assert_eq!(c.len(), m * n, "matmul_slices_into: c shape mismatch");
    telemetry::counter_add("linalg.gemm.flops", (2 * m * n * k) as u64);
    #[cfg(target_arch = "x86_64")]
    match simd::level() {
        simd::Level::Avx512 => {
            // SAFETY: level() only reports instruction sets the CPU
            // supports, and the shape asserts above establish the kernel's
            // slice-length contract.
            return unsafe { simd::avx512::matmul_slices(a, b, m, k, n, c, None) };
        }
        simd::Level::Avx2 => {
            // SAFETY: as above for the AVX2+FMA tier.
            return unsafe { simd::avx2::matmul_slices(a, b, m, k, n, c, None) };
        }
        simd::Level::Scalar => {}
    }
    matmul_slices_scalar(a, b, m, k, n, c);
}

/// `C = ca·(A·B) + cb·Z` — [`matmul_slices_into`] with the affine epilogue
/// of [`crate::vector::scale_add`] fused into the store, saving one full
/// read+write pass over `C`. Per-element arithmetic is identical to running
/// the two calls back to back at the same SIMD level, so fused and unfused
/// results agree bit for bit; the determinism/partition-invariance contract
/// of [`matmul_slices_into`] carries over unchanged (the epilogue is
/// elementwise).
///
/// # Panics
/// Panics on any shape mismatch (`z` must be `m x n` like `c`).
#[allow(clippy::too_many_arguments)]
pub fn matmul_slices_affine_into(
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n: usize,
    z: &[f64],
    ca: f64,
    cb: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "matmul_slices_affine_into: a shape mismatch");
    assert_eq!(b.len(), k * n, "matmul_slices_affine_into: b shape mismatch");
    assert_eq!(z.len(), m * n, "matmul_slices_affine_into: z shape mismatch");
    assert_eq!(c.len(), m * n, "matmul_slices_affine_into: c shape mismatch");
    telemetry::counter_add("linalg.gemm.flops", (2 * m * n * k) as u64);
    #[cfg(target_arch = "x86_64")]
    match simd::level() {
        simd::Level::Avx512 => {
            // SAFETY: level() only reports instruction sets the CPU
            // supports, and the shape asserts above establish the kernel's
            // slice-length contract (including `z`).
            return unsafe { simd::avx512::matmul_slices(a, b, m, k, n, c, Some((z, ca, cb))) };
        }
        simd::Level::Avx2 => {
            // SAFETY: as above for the AVX2+FMA tier.
            return unsafe { simd::avx2::matmul_slices(a, b, m, k, n, c, Some((z, ca, cb))) };
        }
        simd::Level::Scalar => {}
    }
    matmul_slices_scalar(a, b, m, k, n, c);
    crate::vector::scale_add(c, ca, z, cb);
}

/// Portable scalar body of [`matmul_slices_into`].
fn matmul_slices_scalar(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, c: &mut [f64]) {
    c.fill(0.0);

    let a_buf = a;
    let b_buf = b;

    let kernel = |row_idx: usize, c_row: &mut [f64]| {
        let a_row = &a_buf[row_idx * k..(row_idx + 1) * k];
        // Blocked over (k, j): each (kk, jj) panel of B is streamed once per
        // row while the accumulators stay in the C row.
        for kk in (0..k).step_by(KC) {
            let k_end = (kk + KC).min(k);
            for jj in (0..n).step_by(JC) {
                let j_end = (jj + JC).min(n);
                for p in kk..k_end {
                    let aval = a_row[p];
                    if aval == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                        continue;
                    }
                    let b_row = &b_buf[p * n..p * n + n];
                    for j in jj..j_end {
                        c_row[j] += aval * b_row[j];
                    }
                }
            }
        }
    };

    if m * n * k >= PAR_FLOPS_THRESHOLD {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| kernel(i, row));
    } else {
        for (i, row) in c.chunks_mut(n).enumerate() {
            kernel(i, row);
        }
    }
}

/// `A^T * B` without materializing the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_at_b: row counts differ");
    let mut c = Matrix::zeros(m, n);
    let a_buf = a.as_slice();
    let b_buf = b.as_slice();
    // c[i, j] = sum_p a[p, i] * b[p, j]: stream both by rows of p.
    for p in 0..k {
        let a_row = &a_buf[p * m..(p + 1) * m];
        let b_row = &b_buf[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                continue;
            }
            let c_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cj, &bv) in c_row.iter_mut().zip(b_row) {
                *cj += av * bv;
            }
        }
    }
    c
}

/// `A * B^T` without materializing the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "matmul_a_bt: inner dimensions differ");
    let mut c = Matrix::zeros(m, n);
    matmul_abt_into(a.as_slice(), b.as_slice(), m, n, k, c.as_mut_slice());
    c
}

/// `C = A * B^T` on raw row-major slices: `a` is `m x k`, `b` is `n x k`
/// (so both operands stream along contiguous rows), `c` (overwritten) is
/// `m x n`.
///
/// The hot path is a 4x4 register tile: 16 independent accumulator chains
/// keep the FP units saturated where a single running dot product would be
/// latency-bound. Each `c[i][j]` is a fixed-order reduction — a single
/// `k`-ascending chain on the scalar level, a fixed lane-split FMA chain
/// with a fixed pairwise combine on the SIMD levels — and full tiles and
/// edge tiles apply the identical per-element operation sequence, so the
/// output is bitwise independent of how the rows of `a` are grouped or
/// partitioned. The EnSF analysis relies on this for its rank-decomposition
/// bitwise-identity contract.
pub fn matmul_abt_into(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "matmul_abt_into: a shape mismatch");
    assert_eq!(b.len(), n * k, "matmul_abt_into: b shape mismatch");
    assert_eq!(c.len(), m * n, "matmul_abt_into: c shape mismatch");
    telemetry::counter_add("linalg.gemm.flops", (2 * m * n * k) as u64);
    #[cfg(target_arch = "x86_64")]
    match simd::level() {
        simd::Level::Avx512 => {
            // SAFETY: level() only reports instruction sets the CPU
            // supports, and the shape asserts above establish the kernel's
            // slice-length contract.
            return unsafe { simd::avx512::matmul_abt(a, b, m, n, k, c) };
        }
        simd::Level::Avx2 => {
            // SAFETY: as above for the AVX2+FMA tier.
            return unsafe { simd::avx2::matmul_abt(a, b, m, n, k, c) };
        }
        simd::Level::Scalar => {}
    }
    matmul_abt_scalar(a, b, m, n, k, c);
}

/// Portable scalar body of [`matmul_abt_into`].
fn matmul_abt_scalar(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, c: &mut [f64]) {
    const T: usize = 4;
    let mut i0 = 0;
    while i0 < m {
        let ih = T.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jh = T.min(n - j0);
            if ih == T && jh == T {
                let a0 = &a[i0 * k..(i0 + 1) * k];
                let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
                let a2 = &a[(i0 + 2) * k..(i0 + 3) * k];
                let a3 = &a[(i0 + 3) * k..(i0 + 4) * k];
                let b0 = &b[j0 * k..(j0 + 1) * k];
                let b1 = &b[(j0 + 1) * k..(j0 + 2) * k];
                let b2 = &b[(j0 + 2) * k..(j0 + 3) * k];
                let b3 = &b[(j0 + 3) * k..(j0 + 4) * k];
                let (mut c00, mut c01, mut c02, mut c03) = (0.0f64, 0.0, 0.0, 0.0);
                let (mut c10, mut c11, mut c12, mut c13) = (0.0f64, 0.0, 0.0, 0.0);
                let (mut c20, mut c21, mut c22, mut c23) = (0.0f64, 0.0, 0.0, 0.0);
                let (mut c30, mut c31, mut c32, mut c33) = (0.0f64, 0.0, 0.0, 0.0);
                for p in 0..k {
                    let (av0, av1, av2, av3) = (a0[p], a1[p], a2[p], a3[p]);
                    let (bv0, bv1, bv2, bv3) = (b0[p], b1[p], b2[p], b3[p]);
                    c00 += av0 * bv0;
                    c01 += av0 * bv1;
                    c02 += av0 * bv2;
                    c03 += av0 * bv3;
                    c10 += av1 * bv0;
                    c11 += av1 * bv1;
                    c12 += av1 * bv2;
                    c13 += av1 * bv3;
                    c20 += av2 * bv0;
                    c21 += av2 * bv1;
                    c22 += av2 * bv2;
                    c23 += av2 * bv3;
                    c30 += av3 * bv0;
                    c31 += av3 * bv1;
                    c32 += av3 * bv2;
                    c33 += av3 * bv3;
                }
                let tile = [
                    [c00, c01, c02, c03],
                    [c10, c11, c12, c13],
                    [c20, c21, c22, c23],
                    [c30, c31, c32, c33],
                ];
                for (di, row) in tile.iter().enumerate() {
                    c[(i0 + di) * n + j0..(i0 + di) * n + j0 + T].copy_from_slice(row);
                }
            } else {
                // Edge tile: same per-element k-ascending chain as the full
                // tile, so values are identical whichever tile an element
                // lands in.
                for di in 0..ih {
                    let ar = &a[(i0 + di) * k..(i0 + di + 1) * k];
                    for dj in 0..jh {
                        let br = &b[(j0 + dj) * k..(j0 + dj + 1) * k];
                        let mut acc = 0.0f64;
                        for p in 0..k {
                            acc += ar[p] * br[p];
                        }
                        c[(i0 + di) * n + j0 + dj] = acc;
                    }
                }
            }
            j0 += T;
        }
        i0 += T;
    }
}

/// Squared Euclidean norm of each row of a row-major `rows x cols` matrix.
///
/// Each norm is the same fixed-order reduction as the [`matmul_abt_into`]
/// per-element kernel (applied to the row with itself), keeping the EnSF
/// distance expansion deterministic and partition-invariant at every SIMD
/// level.
pub fn row_sq_norms(a: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "row_sq_norms: input shape mismatch");
    assert_eq!(out.len(), rows, "row_sq_norms: output length mismatch");
    #[cfg(target_arch = "x86_64")]
    match simd::level() {
        simd::Level::Avx512 => {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(cols)) {
                // SAFETY: level() only reports instruction sets the CPU
                // supports; both operands are the same in-bounds row.
                *o = unsafe { simd::avx512::dot(row, row) };
            }
            return;
        }
        simd::Level::Avx2 => {
            for (o, row) in out.iter_mut().zip(a.chunks_exact(cols)) {
                // SAFETY: as above for the AVX2+FMA tier.
                *o = unsafe { simd::avx2::dot(row, row) };
            }
            return;
        }
        simd::Level::Scalar => {}
    }
    for (o, row) in out.iter_mut().zip(a.chunks_exact(cols)) {
        let mut acc = 0.0f64;
        for &x in row {
            acc += x * x;
        }
        *o = acc;
    }
}

/// Reusable pool of `f64` work buffers for GEMM-based pipelines.
///
/// Callers that evaluate a fixed-shape product many times (the EnSF batched
/// analysis calls two GEMMs per reverse-SDE step) create one scratch up
/// front and borrow the same buffers each iteration: after the first
/// [`GemmScratch::slices`] call at a given set of lengths, no further heap
/// allocation occurs.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pool: Vec<Vec<f64>>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        GemmScratch::default()
    }

    /// Borrows `N` disjoint zero-initialized-on-growth buffers of the given
    /// lengths. Buffer `i` keeps its capacity across calls, so repeated
    /// calls with the same lengths are allocation-free. Contents persist
    /// between calls (they are scratch, not cleared).
    pub fn slices<const N: usize>(&mut self, lens: [usize; N]) -> [&mut [f64]; N] {
        if self.pool.len() < N {
            self.pool.resize_with(N, Vec::new);
        }
        let mut it = self.pool.iter_mut();
        lens.map(|len| {
            // INVARIANT: the pool was just resized to at least N entries, so
            // the iterator yields one buffer per requested length.
            let buf = it.next().expect("pool sized above");
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            &mut buf[..len]
        })
    }
}

/// Matrix-vector product `A * x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let (m, k) = a.shape();
    assert_eq!(k, x.len(), "matvec: dimension mismatch");
    (0..m).map(|i| crate::vector::dot(a.row(i), x)).collect()
}

/// Transposed matrix-vector product `A^T * x`.
pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(m, x.len(), "matvec_t: dimension mismatch");
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
            continue;
        }
        crate::vector::axpy(xi, a.row(i), &mut y);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
    }

    fn test_matrix(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f64 * seed).sin())
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = test_matrix(3, 4, 0.7);
        let b = test_matrix(4, 5, 1.3);
        let got = matmul(&a, &b);
        let want = naive_matmul(&a, &b);
        assert!(got.sub(&want).norm_max() < 1e-12);
    }

    #[test]
    fn matmul_matches_naive_blocked_sizes() {
        // Cross the KC/JC block boundaries and the parallel threshold.
        let a = test_matrix(70, 300, 0.19);
        let b = test_matrix(300, 150, 0.41);
        let got = matmul(&a, &b);
        let want = naive_matmul(&a, &b);
        assert!(got.sub(&want).norm_max() < 1e-9);
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(6, 6, 0.23);
        let i = Matrix::identity(6);
        assert!(matmul(&a, &i).sub(&a).norm_max() < 1e-14);
        assert!(matmul(&i, &a).sub(&a).norm_max() < 1e-14);
    }

    #[test]
    fn at_b_and_a_bt_match_explicit_transposes() {
        let a = test_matrix(7, 4, 0.31);
        let b = test_matrix(7, 5, 0.57);
        let got = matmul_at_b(&a, &b);
        let want = matmul(&a.transpose(), &b);
        assert!(got.sub(&want).norm_max() < 1e-12);

        let c = test_matrix(6, 7, 0.11);
        let d = test_matrix(5, 7, 0.77);
        let got2 = matmul_a_bt(&c, &d);
        let want2 = matmul(&c, &d.transpose());
        assert!(got2.sub(&want2).norm_max() < 1e-12);
    }

    #[test]
    fn matvec_consistency() {
        let a = test_matrix(5, 8, 0.91);
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let y = matvec(&a, &x);
        let via_matmul = matmul(&a, &Matrix::from_vec(8, 1, x.clone()));
        for i in 0..5 {
            assert!((y[i] - via_matmul[(i, 0)]).abs() < 1e-12);
        }
        let z = matvec_t(&a, &y);
        let want = matvec(&a.transpose(), &y);
        for i in 0..8 {
            assert!((z[i] - want[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn associativity_within_tolerance() {
        let a = test_matrix(4, 6, 0.3);
        let b = test_matrix(6, 5, 0.5);
        let c = test_matrix(5, 3, 0.9);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.sub(&right).norm_max() < 1e-10);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn affine_fused_matches_unfused_bitwise() {
        // Fusing the scale_add epilogue into the slices kernel must be a
        // pure store-path change: same bits as the two-call sequence, at
        // every shape including scalar-remainder columns.
        for (m, k, n) in [(1, 1, 1), (4, 20, 64), (5, 7, 29), (20, 20, 83), (3, 11, 16)] {
            let a = test_matrix(m, k, 0.37);
            let b = test_matrix(k, n, 0.19);
            let z = test_matrix(m, n, 0.61);
            let (ca, cb) = (1.375, -0.625);
            let mut unfused = vec![0.0; m * n];
            matmul_slices_into(a.as_slice(), b.as_slice(), m, k, n, &mut unfused);
            crate::vector::scale_add(&mut unfused, ca, z.as_slice(), cb);
            let mut fused = vec![0.0; m * n];
            matmul_slices_affine_into(
                a.as_slice(),
                b.as_slice(),
                m,
                k,
                n,
                z.as_slice(),
                ca,
                cb,
                &mut fused,
            );
            for (f, u) in fused.iter().zip(&unfused) {
                assert_eq!(f.to_bits(), u.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn abt_tiled_matches_naive_across_edge_shapes() {
        // Cover full 4x4 tiles plus every edge-tile shape.
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (4, 4, 64), (9, 6, 33), (8, 8, 257), (5, 13, 100)] {
            let a = test_matrix(m, k, 0.17);
            let b = test_matrix(n, k, 0.29);
            let mut c = vec![0.0; m * n];
            matmul_abt_into(a.as_slice(), b.as_slice(), m, n, k, &mut c);
            let want = matmul(&a, &b.transpose());
            for (got, w) in c.iter().zip(want.as_slice()) {
                assert!((got - w).abs() < 1e-9 * (1.0 + w.abs()), "{m}x{n}x{k}: {got} vs {w}");
            }
        }
    }

    #[test]
    fn abt_tiled_is_row_grouping_invariant() {
        // Computing a sub-block of rows must reproduce the corresponding
        // rows of the full product bit for bit: the partition-invariance
        // contract the EnSF rank decomposition relies on.
        let (m, n, k) = (11, 7, 129);
        let a = test_matrix(m, k, 0.53);
        let b = test_matrix(n, k, 0.71);
        let mut full = vec![0.0; m * n];
        matmul_abt_into(a.as_slice(), b.as_slice(), m, n, k, &mut full);
        for start in 0..m {
            for end in start + 1..=m {
                let rows = end - start;
                let mut part = vec![0.0; rows * n];
                matmul_abt_into(&a.as_slice()[start * k..end * k], b.as_slice(), rows, n, k, &mut part);
                assert_eq!(part, full[start * n..end * n], "rows {start}..{end} diverged");
            }
        }
    }

    #[test]
    fn row_sq_norms_matches_dot() {
        let a = test_matrix(5, 9, 0.43);
        let mut norms = vec![0.0; 5];
        row_sq_norms(a.as_slice(), 5, 9, &mut norms);
        for i in 0..5 {
            let want: f64 = a.row(i).iter().map(|x| x * x).sum();
            assert!((norms[i] - want).abs() < 1e-12 * (1.0 + want));
        }
    }

    #[test]
    fn matmul_slices_matches_matrix_entry_point() {
        let a = test_matrix(6, 10, 0.13);
        let b = test_matrix(10, 4, 0.37);
        let want = matmul(&a, &b);
        let mut c = vec![0.0; 6 * 4];
        matmul_slices_into(a.as_slice(), b.as_slice(), 6, 10, 4, &mut c);
        assert_eq!(c, want.as_slice());
    }

    #[test]
    fn gemm_scratch_reuses_buffers() {
        let mut scratch = GemmScratch::new();
        {
            let [x, y] = scratch.slices([4, 8]);
            x.fill(1.0);
            y.fill(2.0);
            assert_eq!(x.len(), 4);
            assert_eq!(y.len(), 8);
        }
        // Same lengths again: same backing buffers, contents preserved.
        let ptrs: Vec<*const f64> = {
            let [x, y] = scratch.slices([4, 8]);
            assert!(x.iter().all(|&v| v == 1.0));
            assert!(y.iter().all(|&v| v == 2.0));
            vec![x.as_ptr(), y.as_ptr()]
        };
        let [x2, y2] = scratch.slices([4, 8]);
        assert_eq!(ptrs, vec![x2.as_ptr(), y2.as_ptr()]);
    }
}
