//! Matrix multiplication kernels.
//!
//! The hot path is a cache-blocked i-k-j loop nest with the `k`-panel of `B`
//! kept hot in L1/L2; rows of `C` are parallelized with rayon above a size
//! threshold. The same kernel family backs the ViT crate's f32 tensors (it
//! has its own copy specialized to f32); here everything is f64 for the DA
//! math.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Minimum `rows * cols * inner` product before the parallel path engages.
const PAR_FLOPS_THRESHOLD: usize = 64 * 64 * 64;

/// Cache block edge for the k dimension.
const KC: usize = 256;
/// Cache block edge for the j dimension.
const JC: usize = 128;

/// `C = A * B`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul: inner dimensions differ ({k} vs {kb})");
    let mut c = Matrix::zeros(m, n);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A * B` writing into a preallocated `c` (overwritten, not accumulated).
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_into: inner dimensions differ");
    assert_eq!(c.shape(), (m, n), "matmul_into: output shape mismatch");
    telemetry::counter_add("linalg.gemm.flops", (2 * m * n * k) as u64);
    c.as_mut_slice().fill(0.0);

    let a_buf = a.as_slice();
    let b_buf = b.as_slice();

    let kernel = |row_idx: usize, c_row: &mut [f64]| {
        let a_row = &a_buf[row_idx * k..(row_idx + 1) * k];
        // Blocked over (k, j): each (kk, jj) panel of B is streamed once per
        // row while the accumulators stay in the C row.
        for kk in (0..k).step_by(KC) {
            let k_end = (kk + KC).min(k);
            for jj in (0..n).step_by(JC) {
                let j_end = (jj + JC).min(n);
                for p in kk..k_end {
                    let aval = a_row[p];
                    if aval == 0.0 {
                        continue;
                    }
                    let b_row = &b_buf[p * n..p * n + n];
                    for j in jj..j_end {
                        c_row[j] += aval * b_row[j];
                    }
                }
            }
        }
    };

    if m * n * k >= PAR_FLOPS_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| kernel(i, row));
    } else {
        for (i, row) in c.as_mut_slice().chunks_mut(n).enumerate() {
            kernel(i, row);
        }
    }
}

/// `A^T * B` without materializing the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_at_b: row counts differ");
    let mut c = Matrix::zeros(m, n);
    let a_buf = a.as_slice();
    let b_buf = b.as_slice();
    // c[i, j] = sum_p a[p, i] * b[p, j]: stream both by rows of p.
    for p in 0..k {
        let a_row = &a_buf[p * m..(p + 1) * m];
        let b_row = &b_buf[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cj, &bv) in c_row.iter_mut().zip(b_row) {
                *cj += av * bv;
            }
        }
    }
    c
}

/// `A * B^T` without materializing the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "matmul_a_bt: inner dimensions differ");
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            c[(i, j)] = crate::vector::dot(a.row(i), b.row(j));
        }
    }
    c
}

/// Matrix-vector product `A * x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let (m, k) = a.shape();
    assert_eq!(k, x.len(), "matvec: dimension mismatch");
    (0..m).map(|i| crate::vector::dot(a.row(i), x)).collect()
}

/// Transposed matrix-vector product `A^T * x`.
pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(m, x.len(), "matvec_t: dimension mismatch");
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        crate::vector::axpy(xi, a.row(i), &mut y);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
    }

    fn test_matrix(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f64 * seed).sin())
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = test_matrix(3, 4, 0.7);
        let b = test_matrix(4, 5, 1.3);
        let got = matmul(&a, &b);
        let want = naive_matmul(&a, &b);
        assert!(got.sub(&want).norm_max() < 1e-12);
    }

    #[test]
    fn matmul_matches_naive_blocked_sizes() {
        // Cross the KC/JC block boundaries and the parallel threshold.
        let a = test_matrix(70, 300, 0.19);
        let b = test_matrix(300, 150, 0.41);
        let got = matmul(&a, &b);
        let want = naive_matmul(&a, &b);
        assert!(got.sub(&want).norm_max() < 1e-9);
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(6, 6, 0.23);
        let i = Matrix::identity(6);
        assert!(matmul(&a, &i).sub(&a).norm_max() < 1e-14);
        assert!(matmul(&i, &a).sub(&a).norm_max() < 1e-14);
    }

    #[test]
    fn at_b_and_a_bt_match_explicit_transposes() {
        let a = test_matrix(7, 4, 0.31);
        let b = test_matrix(7, 5, 0.57);
        let got = matmul_at_b(&a, &b);
        let want = matmul(&a.transpose(), &b);
        assert!(got.sub(&want).norm_max() < 1e-12);

        let c = test_matrix(6, 7, 0.11);
        let d = test_matrix(5, 7, 0.77);
        let got2 = matmul_a_bt(&c, &d);
        let want2 = matmul(&c, &d.transpose());
        assert!(got2.sub(&want2).norm_max() < 1e-12);
    }

    #[test]
    fn matvec_consistency() {
        let a = test_matrix(5, 8, 0.91);
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let y = matvec(&a, &x);
        let via_matmul = matmul(&a, &Matrix::from_vec(8, 1, x.clone()));
        for i in 0..5 {
            assert!((y[i] - via_matmul[(i, 0)]).abs() < 1e-12);
        }
        let z = matvec_t(&a, &y);
        let want = matvec(&a.transpose(), &y);
        for i in 0..8 {
            assert!((z[i] - want[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn associativity_within_tolerance() {
        let a = test_matrix(4, 6, 0.3);
        let b = test_matrix(6, 5, 0.5);
        let c = test_matrix(5, 3, 0.9);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.sub(&right).norm_max() < 1e-10);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
