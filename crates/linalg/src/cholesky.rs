//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the DA framework to draw correlated Gaussian perturbations
//! (`x = L z`) and to solve SPD systems arising in covariance manipulations.

use crate::matrix::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Pivot index where the factorization broke down.
    pub pivot: usize,
    /// The offending pivot value (`<= 0` or NaN).
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {} (value {:.3e})", self.pivot, self.value)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slightly asymmetric inputs
    /// (round-off) are tolerated.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            // NOTE: `!(d > 0.0)` (rather than `d <= 0.0`) deliberately
            // catches NaN pivots as "not positive definite".
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(d > 0.0) {
                return Err(NotPositiveDefinite { pivot: j, value: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = forward_substitute(&self.l, b);
        back_substitute_transposed(&self.l, &y)
    }

    /// Applies `L` to a vector: `y = L z` (used to color white noise).
    pub fn apply_l(&self, z: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(z.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..=i {
                s += self.l[(i, j)] * z[j];
            }
            y[i] = s;
        }
        y
    }

    /// `log(det(A)) = 2 * sum(log(L_ii))`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solves `L y = b` for lower-triangular `L`.
pub fn forward_substitute(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * y[j];
        }
        y[i] = s / l[(i, i)];
    }
    y
}

/// Solves `L^T x = y` for lower-triangular `L` (i.e. an upper-triangular
/// solve against the transpose, without materializing it).
pub fn back_substitute_transposed(l: &Matrix, y: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(y.len(), n);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_a_bt, matvec};

    fn spd_matrix(n: usize, seed: f64) -> Matrix {
        // B B^T + n I is SPD for any B.
        let b = Matrix::from_fn(n, n, |r, c| ((r * n + c) as f64 * seed).sin());
        let mut a = matmul_a_bt(&b, &b);
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_matrix(6, 0.37);
        let ch = Cholesky::new(&a).unwrap();
        let back = matmul_a_bt(ch.l(), ch.l());
        assert!(back.sub(&a).norm_max() < 1e-10);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = spd_matrix(5, 0.91);
        let ch = Cholesky::new(&a).unwrap();
        for r in 0..5 {
            for c in (r + 1)..5 {
                assert_eq!(ch.l()[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_direct_multiplication() {
        let a = spd_matrix(8, 0.53);
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) * 0.5).collect();
        let b = matvec(&a, &x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_l_matches_matmul() {
        let a = spd_matrix(5, 0.7);
        let ch = Cholesky::new(&a).unwrap();
        let z: Vec<f64> = (0..5).map(|i| (i as f64).cos()).collect();
        let y = ch.apply_l(&z);
        let want = matvec(ch.l(), &z);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-14);
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 24.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        let err = Cholesky::new(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
    }

    #[test]
    fn triangular_solves_agree_with_matmul() {
        let a = spd_matrix(6, 0.21);
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| i as f64 + 1.0).collect();
        let y = forward_substitute(ch.l(), &b);
        let ly = matvec(ch.l(), &y);
        for (g, w) in ly.iter().zip(&b) {
            assert!((g - w).abs() < 1e-10);
        }
        let x = back_substitute_transposed(ch.l(), &y);
        let ltx = matvec(&ch.l().transpose(), &x);
        for (g, w) in ltx.iter().zip(&y) {
            assert!((g - w).abs() < 1e-10);
        }
        // And the full product must give back b.
        let ax = matvec(&matmul(ch.l(), &ch.l().transpose()), &x);
        for (g, w) in ax.iter().zip(&b) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}
