//! LU factorization with partial pivoting.
//!
//! General (non-symmetric) solves and determinants; the LETKF inversion path
//! uses the symmetric eigensolver instead, but model-error covariance tooling
//! and the tests want a general-purpose solver.

use crate::matrix::Matrix;

/// Error for numerically singular matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Singular {
    /// Elimination column where no usable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for Singular {}

/// Packed LU factorization: `P A = L U` with unit-diagonal `L`.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implicit), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the source row of output row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`), for determinants.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix with partial (row) pivoting.
    pub fn new(a: &Matrix) -> Result<Self, Singular> {
        let n = a.rows();
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Pivot search.
            let mut p = col;
            let mut best = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best == 0.0 || !best.is_finite() { // lint: allow(float-exact-compare, reason="an exactly-zero pivot column is the singularity sentinel")
                return Err(Singular { column: col });
            }
            if p != col {
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                perm.swap(col, p);
                sign = -sign;
            }
            // Elimination.
            let pivot = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for c in (col + 1)..n {
                    let sub = factor * lu[(col, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward- and back-substitute.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 0..n {
            for j in 0..i {
                y[i] -= self.lu[(i, j)] * y[j];
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                y[i] -= self.lu[(i, j)] * y[j];
            }
            y[i] /= self.lu[(i, i)];
        }
        y
    }

    /// Solves for multiple right-hand sides given as matrix columns.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.lu.rows();
        assert_eq!(b.rows(), n);
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col);
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        out
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.sign
    }

    /// Explicit inverse (prefer `solve` where possible).
    pub fn inverse(&self) -> Matrix {
        let n = self.lu.rows();
        self.solve_matrix(&Matrix::identity(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matvec};

    fn well_conditioned(n: usize, seed: f64) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |r, c| ((r * n + c + 1) as f64 * seed).sin());
        a.add_diag(n as f64); // diagonally dominant-ish
        a
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = well_conditioned(7, 0.61);
        let x_true: Vec<f64> = (0..7).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = matvec(&a, &x_true);
        let x = Lu::new(&a).unwrap().solve(&b);
        for (g, w) in x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = well_conditioned(6, 0.43);
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = matmul(&a, &inv);
        assert!(prod.sub(&Matrix::identity(6)).norm_max() < 1e-9);
    }

    #[test]
    fn det_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[2.0, -3.0, 4.0]);
        let det = Lu::new(&a).unwrap().det();
        assert!((det - (-24.0)).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_permutations() {
        // A permutation matrix swapping two rows has determinant -1.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(2, 2)] = 1.0;
        assert!((Lu::new(&a).unwrap().det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(Lu::new(&a).is_err());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = well_conditioned(5, 0.37);
        let b = Matrix::from_fn(5, 3, |r, c| (r + c) as f64);
        let x = Lu::new(&a).unwrap().solve_matrix(&b);
        let back = matmul(&a, &x);
        assert!(back.sub(&b).norm_max() < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }
}
