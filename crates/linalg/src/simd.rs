//! Runtime SIMD dispatch for the GEMM-family kernels.
//!
//! The hot EnSF kernels ([`crate::gemm::matmul_abt_into`],
//! [`crate::gemm::matmul_slices_into`], [`crate::gemm::row_sq_norms`],
//! [`crate::vector::scale_add`]) dispatch once per call on the detected
//! [`Level`]; the widest supported instruction set wins. The scalar bodies
//! remain the portable fallback and the executable specification.
//!
//! ## Determinism contract
//!
//! Reduction kernels (`A·Bᵀ` dots, row norms) accumulate in a **fixed
//! lane-split order**: 8 (AVX-512) or 4 (AVX2) independent FMA chains over
//! ascending `k` chunks, combined pairwise in a fixed tree, with the scalar
//! remainder appended in ascending order. The per-element arithmetic never
//! depends on tile shape, row grouping, or matrix size, so within one
//! process every level is bitwise run-to-run deterministic and
//! partition-invariant — the property the EnSF rank-decomposition contract
//! needs. Different levels (scalar vs AVX2 vs AVX-512) produce different
//! last-bit roundings, so results are *not* bitwise portable across
//! machines; everything downstream only assumes within-run determinism.
//!
//! Set `LINALG_SIMD=scalar` (or `avx2`) to cap the level below what the CPU
//! supports — useful for differential testing; requests above the detected
//! level are ignored.

use std::sync::OnceLock;

/// Instruction-set tier used by the dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Portable scalar loops (the reference semantics).
    Scalar,
    /// AVX2 + FMA: 4-lane `f64` chains.
    Avx2,
    /// AVX-512F: 8-lane `f64` chains.
    Avx512,
}

/// Detected (and possibly env-capped) SIMD level, fixed for the process.
pub fn level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let cap = match std::env::var("LINALG_SIMD").as_deref() {
            Ok("scalar") => Level::Scalar,
            Ok("avx2") => Level::Avx2,
            _ => Level::Avx512,
        };
        detected().min(cap)
    })
}

#[cfg(target_arch = "x86_64")]
fn detected() -> Level {
    if is_x86_feature_detected!("avx512f") {
        Level::Avx512
    } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Level::Avx2
    } else {
        Level::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detected() -> Level {
    Level::Scalar
}

/// AVX-512F kernels (8-lane f64).
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512 {
    use std::arch::x86_64::*;

    /// Fixed pairwise combine of the 8 lane partials; shared by every
    /// AVX-512 reduction so tile and edge paths agree bit for bit.
    ///
    /// # Safety
    /// AVX-512F must be available; every caller is itself gated on
    /// `#[target_feature(enable = "avx512f")]`.
    #[inline(always)]
    unsafe fn hsum(acc: __m512d) -> f64 {
        let mut l = [0.0f64; 8];
        // SAFETY: `l` is a 64-byte local array and `storeu` is unaligned;
        // AVX-512F availability is this fn's documented contract.
        unsafe { _mm512_storeu_pd(l.as_mut_ptr(), acc) };
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }

    /// Dot product as one 8-lane FMA chain plus ascending scalar remainder.
    ///
    /// # Safety
    /// AVX-512F must be available at runtime (the dispatcher checks
    /// `is_x86_feature_detected!`) and `b.len() >= a.len()`.
    // lint: no_alloc
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let k = a.len();
        // SAFETY: each 8-lane load reads `a[c*8..c*8+8]` / `b[c*8..c*8+8]`
        // with `c*8 + 8 <= k <= b.len()`, so all pointers stay in bounds;
        // the ISA requirement is the fn's documented safety contract.
        unsafe {
            let mut acc = _mm512_setzero_pd();
            let chunks = k / 8;
            for c in 0..chunks {
                let av = _mm512_loadu_pd(a.as_ptr().add(c * 8));
                let bv = _mm512_loadu_pd(b.as_ptr().add(c * 8));
                acc = _mm512_fmadd_pd(av, bv, acc);
            }
            let mut sum = hsum(acc);
            for p in chunks * 8..k {
                sum = a[p].mul_add(b[p], sum);
            }
            sum
        }
    }

    /// `C = A·Bᵀ`: 4x4 register tiles of 16 independent chains; edge
    /// elements fall back to [`dot`], which performs the identical
    /// per-element operation sequence.
    ///
    /// # Safety
    /// AVX-512F must be available at runtime; `a` is `m×k`, `b` is `n×k`,
    /// and `c` holds at least `m·n` elements (row-major).
    // lint: no_alloc
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_abt(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, c: &mut [f64]) {
        const T: usize = 4;
        // SAFETY: the full-tile path only runs when 4 whole rows of `a` and
        // `b` exist, so the row pointers and their `off + 8 <= k` loads stay
        // inside the slices; edge tiles use safe indexing through [`dot`].
        // The ISA requirement is the fn's documented safety contract.
        unsafe {
            let chunks = k / 8;
            let mut i0 = 0;
            while i0 < m {
                let ih = T.min(m - i0);
                let mut j0 = 0;
                while j0 < n {
                    let jh = T.min(n - j0);
                    if ih == T && jh == T {
                        let ap = [
                            a.as_ptr().add(i0 * k),
                            a.as_ptr().add((i0 + 1) * k),
                            a.as_ptr().add((i0 + 2) * k),
                            a.as_ptr().add((i0 + 3) * k),
                        ];
                        let bp = [
                            b.as_ptr().add(j0 * k),
                            b.as_ptr().add((j0 + 1) * k),
                            b.as_ptr().add((j0 + 2) * k),
                            b.as_ptr().add((j0 + 3) * k),
                        ];
                        let mut acc = [[_mm512_setzero_pd(); T]; T];
                        for ch in 0..chunks {
                            let off = ch * 8;
                            let bv = [
                                _mm512_loadu_pd(bp[0].add(off)),
                                _mm512_loadu_pd(bp[1].add(off)),
                                _mm512_loadu_pd(bp[2].add(off)),
                                _mm512_loadu_pd(bp[3].add(off)),
                            ];
                            for (di, &api) in ap.iter().enumerate() {
                                let av = _mm512_loadu_pd(api.add(off));
                                for (dj, &bvj) in bv.iter().enumerate() {
                                    acc[di][dj] = _mm512_fmadd_pd(av, bvj, acc[di][dj]);
                                }
                            }
                        }
                        for di in 0..T {
                            for dj in 0..T {
                                let mut sum = hsum(acc[di][dj]);
                                for p in chunks * 8..k {
                                    sum = (*ap[di].add(p)).mul_add(*bp[dj].add(p), sum);
                                }
                                c[(i0 + di) * n + j0 + dj] = sum;
                            }
                        }
                    } else {
                        for di in 0..ih {
                            let ar = &a[(i0 + di) * k..(i0 + di + 1) * k];
                            for dj in 0..jh {
                                let br = &b[(j0 + dj) * k..(j0 + dj + 1) * k];
                                c[(i0 + di) * n + j0 + dj] = dot(ar, br);
                            }
                        }
                    }
                    j0 += T;
                }
                i0 += T;
            }
        }
    }

    /// `C = A·B` (axpy formulation): for each 8-column panel of `C`, the
    /// `p`-ascending FMA chain runs per element, so values are independent
    /// of the 4-row tiling. A `p` index is skipped when *every* row of the
    /// tile carries a zero coefficient — an exact no-op for finite `b` that
    /// makes peaked (softmax-weight) coefficient matrices cheap.
    ///
    /// `epi = Some((z, ca, cb))` fuses the affine epilogue
    /// `C = ca·(A·B) + cb·z` into the store (one `fma` plus one rounded
    /// multiply per element — the same per-element arithmetic as
    /// [`scale_add`], so fused and unfused sequences agree bit for bit
    /// while saving a full read+write pass over `C`).
    ///
    /// # Safety
    /// AVX-512F must be available at runtime; `a` is `m×k`, `b` is `k×n`,
    /// `c` (and `z` when `epi` is set) hold at least `m·n` elements.
    // lint: no_alloc
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_slices(
        a: &[f64],
        b: &[f64],
        m: usize,
        k: usize,
        n: usize,
        c: &mut [f64],
        epi: Option<(&[f64], f64, f64)>,
    ) {
        const T: usize = 4;
        // SAFETY: panel loads/stores touch `jv..jv+8` with `jv + 8 <= vcols
        // <= n`, inside rows `< m` of `b`/`c`/`z`; the scalar column tail
        // uses safe indexing. ISA availability is the documented contract.
        unsafe {
            let vcols = n / 8 * 8;
            let epiv = epi.map(|(z, ca, cb)| (z, _mm512_set1_pd(ca), _mm512_set1_pd(cb)));
            let mut i0 = 0;
            while i0 < m {
                let ih = T.min(m - i0);
                // Union skip list: p contributes iff any of the tile's rows
                // has a nonzero coefficient (per-row zero coefficients are
                // exact no-ops, so the union never changes a row's value).
                let mut jv = 0;
                while jv < vcols {
                    let mut acc = [_mm512_setzero_pd(); T];
                    for p in 0..k {
                        let mut any = false;
                        for di in 0..ih {
                            any |= a[(i0 + di) * k + p] != 0.0; // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                        }
                        if !any {
                            continue;
                        }
                        let bv = _mm512_loadu_pd(b.as_ptr().add(p * n + jv));
                        for (di, accd) in acc.iter_mut().enumerate().take(ih) {
                            let av = _mm512_set1_pd(a[(i0 + di) * k + p]);
                            *accd = _mm512_fmadd_pd(av, bv, *accd);
                        }
                    }
                    for (di, accd) in acc.iter().enumerate().take(ih) {
                        let off = (i0 + di) * n + jv;
                        let r = match epiv {
                            Some((z, cav, cbv)) => {
                                let zv = _mm512_loadu_pd(z.as_ptr().add(off));
                                _mm512_fmadd_pd(cav, *accd, _mm512_mul_pd(cbv, zv))
                            }
                            None => *accd,
                        };
                        _mm512_storeu_pd(c.as_mut_ptr().add(off), r);
                    }
                    jv += 8;
                }
                for j in vcols..n {
                    for di in 0..ih {
                        let mut sum = 0.0f64;
                        for p in 0..k {
                            let av = a[(i0 + di) * k + p];
                            if av != 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                                sum = av.mul_add(b[p * n + j], sum);
                            }
                        }
                        let idx = (i0 + di) * n + j;
                        c[idx] = match epi {
                            Some((z, ca, cb)) => ca.mul_add(sum, cb * z[idx]),
                            None => sum,
                        };
                    }
                }
                i0 += T;
            }
        }
    }

    /// `y = a·y + b·x` elementwise with FMA.
    ///
    /// # Safety
    /// AVX-512F must be available at runtime and `x.len() >= y.len()`.
    // lint: no_alloc
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale_add(y: &mut [f64], a: f64, x: &[f64], b: f64) {
        let len = y.len();
        // SAFETY: vector loads/stores cover `i..i+8` with `i + 8 <= vlen <=
        // len <= x.len()`; the tail uses safe indexing. ISA availability is
        // the fn's documented safety contract.
        unsafe {
            let av = _mm512_set1_pd(a);
            let bv = _mm512_set1_pd(b);
            let vlen = len / 8 * 8;
            let mut i = 0;
            while i < vlen {
                let yv = _mm512_loadu_pd(y.as_ptr().add(i));
                let xv = _mm512_loadu_pd(x.as_ptr().add(i));
                let r = _mm512_fmadd_pd(av, yv, _mm512_mul_pd(bv, xv));
                _mm512_storeu_pd(y.as_mut_ptr().add(i), r);
                i += 8;
            }
            for j in vlen..len {
                y[j] = a.mul_add(y[j], b * x[j]);
            }
        }
    }
}

/// AVX2 + FMA kernels (4-lane f64); same structure and contracts as the
/// AVX-512 module at half the width.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// Fixed pairwise combine of the 4 lane partials.
    ///
    /// # Safety
    /// AVX2 must be available; every caller is itself gated on
    /// `#[target_feature(enable = "avx2,fma")]`.
    #[inline(always)]
    unsafe fn hsum(acc: __m256d) -> f64 {
        let mut l = [0.0f64; 4];
        // SAFETY: `l` is a 32-byte local array and `storeu` is unaligned;
        // AVX2 availability is this fn's documented contract.
        unsafe { _mm256_storeu_pd(l.as_mut_ptr(), acc) };
        (l[0] + l[1]) + (l[2] + l[3])
    }

    /// Dot product as one 4-lane FMA chain plus ascending scalar remainder.
    ///
    /// # Safety
    /// AVX2+FMA must be available at runtime (the dispatcher checks
    /// `is_x86_feature_detected!`) and `b.len() >= a.len()`.
    // lint: no_alloc
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let k = a.len();
        // SAFETY: each 4-lane load reads `a[c*4..c*4+4]` / `b[c*4..c*4+4]`
        // with `c*4 + 4 <= k <= b.len()`, so all pointers stay in bounds;
        // the ISA requirement is the fn's documented safety contract.
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let chunks = k / 4;
            for c in 0..chunks {
                let av = _mm256_loadu_pd(a.as_ptr().add(c * 4));
                let bv = _mm256_loadu_pd(b.as_ptr().add(c * 4));
                acc = _mm256_fmadd_pd(av, bv, acc);
            }
            let mut sum = hsum(acc);
            for p in chunks * 4..k {
                sum = a[p].mul_add(b[p], sum);
            }
            sum
        }
    }

    /// `C = A·Bᵀ`: 4x4 tiles of 4-lane chains, [`dot`]-identical per element.
    ///
    /// # Safety
    /// AVX2+FMA must be available at runtime; `a` is `m×k`, `b` is `n×k`,
    /// and `c` holds at least `m·n` elements (row-major).
    // lint: no_alloc
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_abt(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, c: &mut [f64]) {
        const T: usize = 4;
        // SAFETY: the full-tile path only runs when 4 whole rows of `a` and
        // `b` exist, so the row pointers and their `off + 4 <= k` loads stay
        // inside the slices; edge tiles use safe indexing through [`dot`].
        // The ISA requirement is the fn's documented safety contract.
        unsafe {
            let chunks = k / 4;
            let mut i0 = 0;
            while i0 < m {
                let ih = T.min(m - i0);
                let mut j0 = 0;
                while j0 < n {
                    let jh = T.min(n - j0);
                    if ih == T && jh == T {
                        let ap = [
                            a.as_ptr().add(i0 * k),
                            a.as_ptr().add((i0 + 1) * k),
                            a.as_ptr().add((i0 + 2) * k),
                            a.as_ptr().add((i0 + 3) * k),
                        ];
                        let bp = [
                            b.as_ptr().add(j0 * k),
                            b.as_ptr().add((j0 + 1) * k),
                            b.as_ptr().add((j0 + 2) * k),
                            b.as_ptr().add((j0 + 3) * k),
                        ];
                        let mut acc = [[_mm256_setzero_pd(); T]; T];
                        for ch in 0..chunks {
                            let off = ch * 4;
                            let bv = [
                                _mm256_loadu_pd(bp[0].add(off)),
                                _mm256_loadu_pd(bp[1].add(off)),
                                _mm256_loadu_pd(bp[2].add(off)),
                                _mm256_loadu_pd(bp[3].add(off)),
                            ];
                            for (di, &api) in ap.iter().enumerate() {
                                let av = _mm256_loadu_pd(api.add(off));
                                for (dj, &bvj) in bv.iter().enumerate() {
                                    acc[di][dj] = _mm256_fmadd_pd(av, bvj, acc[di][dj]);
                                }
                            }
                        }
                        for di in 0..T {
                            for dj in 0..T {
                                let mut sum = hsum(acc[di][dj]);
                                for p in chunks * 4..k {
                                    sum = (*ap[di].add(p)).mul_add(*bp[dj].add(p), sum);
                                }
                                c[(i0 + di) * n + j0 + dj] = sum;
                            }
                        }
                    } else {
                        for di in 0..ih {
                            let ar = &a[(i0 + di) * k..(i0 + di + 1) * k];
                            for dj in 0..jh {
                                let br = &b[(j0 + dj) * k..(j0 + dj + 1) * k];
                                c[(i0 + di) * n + j0 + dj] = dot(ar, br);
                            }
                        }
                    }
                    j0 += T;
                }
                i0 += T;
            }
        }
    }

    /// `C = A·B` (axpy formulation), 4-lane panels; `epi` fuses the affine
    /// epilogue `C = ca·(A·B) + cb·z` exactly as the AVX-512 variant does.
    ///
    /// # Safety
    /// AVX2+FMA must be available at runtime; `a` is `m×k`, `b` is `k×n`,
    /// `c` (and `z` when `epi` is set) hold at least `m·n` elements.
    // lint: no_alloc
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_slices(
        a: &[f64],
        b: &[f64],
        m: usize,
        k: usize,
        n: usize,
        c: &mut [f64],
        epi: Option<(&[f64], f64, f64)>,
    ) {
        const T: usize = 4;
        // SAFETY: panel loads/stores touch `jv..jv+4` with `jv + 4 <= vcols
        // <= n`, inside rows `< m` of `b`/`c`/`z`; the scalar column tail
        // uses safe indexing. ISA availability is the documented contract.
        unsafe {
            let vcols = n / 4 * 4;
            let epiv = epi.map(|(z, ca, cb)| (z, _mm256_set1_pd(ca), _mm256_set1_pd(cb)));
            let mut i0 = 0;
            while i0 < m {
                let ih = T.min(m - i0);
                let mut jv = 0;
                while jv < vcols {
                    let mut acc = [_mm256_setzero_pd(); T];
                    for p in 0..k {
                        let mut any = false;
                        for di in 0..ih {
                            any |= a[(i0 + di) * k + p] != 0.0; // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                        }
                        if !any {
                            continue;
                        }
                        let bv = _mm256_loadu_pd(b.as_ptr().add(p * n + jv));
                        for (di, accd) in acc.iter_mut().enumerate().take(ih) {
                            let av = _mm256_set1_pd(a[(i0 + di) * k + p]);
                            *accd = _mm256_fmadd_pd(av, bv, *accd);
                        }
                    }
                    for (di, accd) in acc.iter().enumerate().take(ih) {
                        let off = (i0 + di) * n + jv;
                        let r = match epiv {
                            Some((z, cav, cbv)) => {
                                let zv = _mm256_loadu_pd(z.as_ptr().add(off));
                                _mm256_fmadd_pd(cav, *accd, _mm256_mul_pd(cbv, zv))
                            }
                            None => *accd,
                        };
                        _mm256_storeu_pd(c.as_mut_ptr().add(off), r);
                    }
                    jv += 4;
                }
                for j in vcols..n {
                    for di in 0..ih {
                        let mut sum = 0.0f64;
                        for p in 0..k {
                            let av = a[(i0 + di) * k + p];
                            if av != 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                                sum = av.mul_add(b[p * n + j], sum);
                            }
                        }
                        let idx = (i0 + di) * n + j;
                        c[idx] = match epi {
                            Some((z, ca, cb)) => ca.mul_add(sum, cb * z[idx]),
                            None => sum,
                        };
                    }
                }
                i0 += T;
            }
        }
    }

    /// `y = a·y + b·x` elementwise with FMA.
    ///
    /// # Safety
    /// AVX2+FMA must be available at runtime and `x.len() >= y.len()`.
    // lint: no_alloc
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_add(y: &mut [f64], a: f64, x: &[f64], b: f64) {
        let len = y.len();
        // SAFETY: vector loads/stores cover `i..i+4` with `i + 4 <= vlen <=
        // len <= x.len()`; the tail uses safe indexing. ISA availability is
        // the fn's documented safety contract.
        unsafe {
            let av = _mm256_set1_pd(a);
            let bv = _mm256_set1_pd(b);
            let vlen = len / 4 * 4;
            let mut i = 0;
            while i < vlen {
                let yv = _mm256_loadu_pd(y.as_ptr().add(i));
                let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                let r = _mm256_fmadd_pd(av, yv, _mm256_mul_pd(bv, xv));
                _mm256_storeu_pd(y.as_mut_ptr().add(i), r);
                i += 4;
            }
            for j in vlen..len {
                y[j] = a.mul_add(y[j], b * x[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable() {
        assert_eq!(level(), level());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Scalar < Level::Avx2);
        assert!(Level::Avx2 < Level::Avx512);
    }
}
