//! # linalg — dense linear-algebra substrate
//!
//! Small, dependency-free (rayon only) dense `f64` kernels sized for the
//! data-assimilation workloads in this workspace:
//!
//! - [`Matrix`] — row-major dense matrix with the layout as a public contract.
//! - [`gemm`] — blocked, rayon-parallel matrix products and matrix-vector
//!   kernels (plus transpose-free `AᵀB` / `ABᵀ` variants the LETKF uses).
//! - [`Cholesky`] — SPD factorization for covariance sampling and solves.
//! - [`Lu`] — general solver / determinant / inverse with partial pivoting.
//! - [`SymEig`] — cyclic Jacobi symmetric eigendecomposition; the workhorse
//!   of the LETKF ensemble-space transform, including `f(A)` evaluation
//!   (`A⁻¹`, `A^{-1/2}`).
//! - [`vector`] — slice-level dot/axpy/norm helpers.
//!
//! ```
//! use linalg::{Matrix, gemm};
//! let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
//! let x = gemm::matvec(&a, &[1.0, 1.0]);
//! assert_eq!(x, vec![3.0, 7.0]);
//! ```

#![warn(missing_docs)]
// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a `// SAFETY:` justification (checked by the
// in-tree analyzer).
#![deny(unsafe_op_in_unsafe_fn)]
// Numeric kernels here read/write several arrays at matched indices;
// explicit index loops are the clearer idiom (dense kernels index multiple parallel arrays).
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod eigh;
pub mod gemm;
mod lu;
mod matrix;
pub mod simd;
pub mod vector;

pub use cholesky::{
    back_substitute_transposed, forward_substitute, Cholesky, NotPositiveDefinite,
};
pub use eigh::SymEig;
pub use lu::{Lu, Singular};
pub use matrix::Matrix;
