//! Dense vector kernels over `&[f64]` slices.
//!
//! Free functions rather than a wrapper type: the DA code mixes ensemble
//! state vectors, observation vectors and flattened grids, and slices compose
//! with all of them without copies.

/// Dot product `x . y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Four-way unrolled accumulation: keeps independent FP chains in flight
    // and is deterministic (fixed association order) across runs.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y += a * x` (BLAS `axpy`).
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Scales `x` in place by `a`.
#[inline]
pub fn scale(x: &mut [f64], a: f64) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Fused row update `y = a * y + b * x` in one pass (FMA-vectorized on the
/// SIMD levels; elementwise, so grouping-invariant at any level).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn scale_add(y: &mut [f64], a: f64, x: &[f64], b: f64) {
    assert_eq!(x.len(), y.len(), "scale_add: length mismatch");
    #[cfg(target_arch = "x86_64")]
    match crate::simd::level() {
        crate::simd::Level::Avx512 => {
            // SAFETY: level() only reports instruction sets the CPU
            // supports; the length assert above matches the kernel contract.
            return unsafe { crate::simd::avx512::scale_add(y, a, x, b) };
        }
        crate::simd::Level::Avx2 => {
            // SAFETY: as above for the AVX2+FMA tier.
            return unsafe { crate::simd::avx2::scale_add(y, a, x, b) };
        }
        crate::simd::Level::Scalar => {}
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = a * *yi + b * xi;
    }
}

/// Euclidean norm `||x||_2`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `max |x_i|` (0 for an empty slice).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Elementwise difference `x - y` into a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Elementwise sum `x + y` into a new vector.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Arithmetic mean (0 for an empty slice).
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Root-mean-square of the entries (0 for an empty slice).
#[inline]
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        (dot(x, x) / x.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64 * 0.11).cos()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, [6.0, 12.0, 18.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn add_sub_mean_rms() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-15);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
