//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The LETKF analysis solves an `m x m` symmetric eigenproblem per local
//! domain (m = ensemble size, ~20), thousands of times per assimilation
//! cycle. Jacobi is ideal at this size: simple, unconditionally stable, and
//! it delivers the orthogonal eigenvector matrix the ensemble transform
//! needs directly.

use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(w) V^T` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

impl SymEig {
    /// Computes the decomposition of symmetric `a`.
    ///
    /// Only the upper triangle is trusted; the matrix is symmetrized on
    /// entry so round-off asymmetry in callers is harmless.
    ///
    /// # Panics
    /// Panics if `a` is not square or contains non-finite entries.
    pub fn new(a: &Matrix) -> Self {
        let n = a.rows();
        assert_eq!(a.rows(), a.cols(), "SymEig requires a square matrix");
        assert!(
            a.as_slice().iter().all(|v| v.is_finite()),
            "SymEig requires finite entries"
        );

        // Work on a symmetrized copy.
        let mut m = Matrix::from_fn(n, n, |r, c| 0.5 * (a[(r, c)] + a[(c, r)]));
        let mut v = Matrix::identity(n);

        let frob = m.norm_frobenius().max(f64::MIN_POSITIVE);
        let tol = 1e-14 * frob;

        for _sweep in 0..MAX_SWEEPS {
            let off = off_diag_norm(&m);
            if off <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    // Classic Jacobi rotation annihilating (p, q).
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate the rotation into the eigenvector matrix.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Extract and sort ascending, permuting eigenvector columns along.
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
        let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let vectors = Matrix::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);
        SymEig { values, vectors }
    }

    /// Reconstructs `f(A) = V diag(f(w)) V^T` for a scalar function `f`.
    ///
    /// This is exactly the operation the LETKF needs: `(..)^{-1}` and
    /// `(..)^{-1/2}` of the analysis-covariance matrix in ensemble space.
    pub fn apply_fn(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let v = &self.vectors;
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let fk = f(self.values[k]);
            if fk == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero term skip is a bitwise no-op")
                continue;
            }
            for r in 0..n {
                let vr = v[(r, k)] * fk;
                if vr == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero term skip is a bitwise no-op")
                    continue;
                }
                for c in 0..n {
                    out[(r, c)] += vr * v[(c, k)];
                }
            }
        }
        out
    }

    /// Symmetric inverse `A^{-1}` (assumes nonzero eigenvalues).
    pub fn inverse(&self) -> Matrix {
        self.apply_fn(|w| 1.0 / w)
    }

    /// Symmetric inverse square root `A^{-1/2}` (assumes positive spectrum).
    pub fn inv_sqrt(&self) -> Matrix {
        self.apply_fn(|w| 1.0 / w.sqrt())
    }
}

fn off_diag_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for r in 0..n {
        for c in (r + 1)..n {
            s += 2.0 * m[(r, c)] * m[(r, c)];
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_a_bt};

    fn sym_matrix(n: usize, seed: f64) -> Matrix {
        let b = Matrix::from_fn(n, n, |r, c| ((r * n + c + 1) as f64 * seed).sin());
        matmul_a_bt(&b, &b)
    }

    #[test]
    fn reconstruction() {
        let a = sym_matrix(8, 0.29);
        let eig = SymEig::new(&a);
        let back = eig.apply_fn(|w| w);
        assert!(back.sub(&a).norm_max() < 1e-9 * a.norm_max().max(1.0));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = sym_matrix(7, 0.71);
        let eig = SymEig::new(&a);
        let vtv = matmul(&eig.vectors.transpose(), &eig.vectors);
        assert!(vtv.sub(&Matrix::identity(7)).norm_max() < 1e-10);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = sym_matrix(6, 0.47);
        let eig = SymEig::new(&a);
        for k in 0..6 {
            let vk = eig.vectors.col(k);
            let av = crate::gemm::matvec(&a, &vk);
            for i in 0..6 {
                assert!(
                    (av[i] - eig.values[k] * vk[i]).abs() < 1e-8 * a.norm_max().max(1.0),
                    "eigenpair {k} violated at row {i}"
                );
            }
        }
    }

    #[test]
    fn values_sorted_ascending() {
        let a = sym_matrix(9, 0.13);
        let eig = SymEig::new(&a);
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_exact() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = SymEig::new(&a);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = SymEig::new(&a);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_and_inv_sqrt() {
        let mut a = sym_matrix(5, 0.83);
        a.add_diag(5.0); // ensure SPD
        let eig = SymEig::new(&a);
        let inv = eig.inverse();
        assert!(matmul(&a, &inv).sub(&Matrix::identity(5)).norm_max() < 1e-8);
        let is = eig.inv_sqrt();
        let isis = matmul(&is, &is);
        assert!(matmul(&a, &isis).sub(&Matrix::identity(5)).norm_max() < 1e-7);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = sym_matrix(10, 0.59);
        let eig = SymEig::new(&a);
        let trace: f64 = (0..10).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn handles_1x1() {
        let a = Matrix::from_vec(1, 1, vec![4.0]);
        let eig = SymEig::new(&a);
        assert_eq!(eig.values, vec![4.0]);
        assert!((eig.vectors[(0, 0)].abs() - 1.0).abs() < 1e-14);
    }
}
