//! Property-based tests for the linear-algebra substrate.

use linalg::{gemm, Cholesky, Lu, Matrix, SymEig};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix (random + diagonal dominance).
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        m.add_diag(n as f64 + 1.0);
        m
    })
}

/// Strategy: an SPD matrix built as B Bᵀ + (n+1) I.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = gemm::matmul_a_bt(&b, &b);
        a.add_diag(n as f64 + 1.0);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (AB)ᵀ == Bᵀ Aᵀ
    #[test]
    fn transpose_of_product(
        m in 1usize..8, k in 1usize..8, n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let lhs = gemm::matmul(&a, &b).transpose();
        let rhs = gemm::matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.sub(&rhs).norm_max() < 1e-10);
    }

    /// LU solve residual is tiny for well-conditioned systems.
    #[test]
    fn lu_solve_residual(a in square_matrix(6), b in prop::collection::vec(-10.0f64..10.0, 6)) {
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b);
        let ax = gemm::matvec(&a, &x);
        for (g, w) in ax.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-8);
        }
    }

    /// det(AB) == det(A) det(B)
    #[test]
    fn det_multiplicative(a in square_matrix(4), b in square_matrix(4)) {
        let da = Lu::new(&a).unwrap().det();
        let db = Lu::new(&b).unwrap().det();
        let dab = Lu::new(&gemm::matmul(&a, &b)).unwrap().det();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    /// Cholesky reconstructs and solves.
    #[test]
    fn cholesky_round_trip(a in spd_matrix(5), b in prop::collection::vec(-5.0f64..5.0, 5)) {
        let ch = Cholesky::new(&a).unwrap();
        let back = gemm::matmul_a_bt(ch.l(), ch.l());
        prop_assert!(back.sub(&a).norm_max() < 1e-9 * a.norm_max());
        let x = ch.solve(&b);
        let ax = gemm::matvec(&a, &x);
        for (g, w) in ax.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-8);
        }
    }

    /// Jacobi eigensolver: reconstruction + orthonormality for random
    /// symmetric matrices (no diagonal boost — exercises clustered spectra).
    #[test]
    fn symeig_properties(data in prop::collection::vec(-1.0f64..1.0, 36)) {
        let b = Matrix::from_vec(6, 6, data);
        let a = Matrix::from_fn(6, 6, |r, c| 0.5 * (b[(r, c)] + b[(c, r)]));
        let eig = SymEig::new(&a);
        // V Vᵀ = I
        let vvt = gemm::matmul_a_bt(&eig.vectors, &eig.vectors);
        prop_assert!(vvt.sub(&Matrix::identity(6)).norm_max() < 1e-9);
        // V diag(w) Vᵀ = A
        let back = eig.apply_fn(|w| w);
        prop_assert!(back.sub(&a).norm_max() < 1e-8);
        // ascending order
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    /// Eigenvalues of an SPD matrix are positive and A^{-1/2} squares to A⁻¹.
    #[test]
    fn symeig_spd_inverse_sqrt(a in spd_matrix(5)) {
        let eig = SymEig::new(&a);
        for &w in &eig.values {
            prop_assert!(w > 0.0);
        }
        let is = eig.inv_sqrt();
        let inv_via_sqrt = gemm::matmul(&is, &is);
        let ident = gemm::matmul(&a, &inv_via_sqrt);
        prop_assert!(ident.sub(&Matrix::identity(5)).norm_max() < 1e-6);
    }

    /// matvec distributes over vector addition.
    #[test]
    fn matvec_linearity(
        a in square_matrix(5),
        x in prop::collection::vec(-3.0f64..3.0, 5),
        y in prop::collection::vec(-3.0f64..3.0, 5),
    ) {
        let xy: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
        let lhs = gemm::matvec(&a, &xy);
        let ax = gemm::matvec(&a, &x);
        let ay = gemm::matvec(&a, &y);
        for i in 0..5 {
            prop_assert!((lhs[i] - (ax[i] + ay[i])).abs() < 1e-10);
        }
    }
}
