//! Verification metrics for DA experiments.
//!
//! The paper's headline accuracy figure (Fig. 4) is RMSE of the analysis
//! ensemble mean against the nature run; we also provide bias, MAE, pattern
//! correlation and the ensemble CRPS used in the extended diagnostics.

/// Root-mean-square error between two fields.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    assert!(!a.is_empty(), "rmse: empty input");
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

/// Mean error (bias) `mean(a - b)`.
pub fn bias(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "bias: length mismatch");
    assert!(!a.is_empty(), "bias: empty input");
    a.iter().zip(b).map(|(x, y)| x - y).sum::<f64>() / a.len() as f64
}

/// Mean absolute error.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae: length mismatch");
    assert!(!a.is_empty(), "mae: empty input");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Centered anomaly (Pearson) correlation between two fields.
/// Returns 0 when either field is constant.
pub fn pattern_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pattern_correlation: length mismatch");
    assert!(!a.is_empty());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut da2 = 0.0;
    let mut db2 = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        num += dx * dy;
        da2 += dx * dx;
        db2 += dy * dy;
    }
    if da2 == 0.0 || db2 == 0.0 { // lint: allow(float-exact-compare, reason="exactly-zero variance is the degenerate-input sentinel")
        0.0
    } else {
        num / (da2.sqrt() * db2.sqrt())
    }
}

/// Continuous ranked probability score of a scalar ensemble forecast against
/// a scalar truth, via the standard kernel form
/// `CRPS = E|X - y| - 0.5 E|X - X'|`.
pub fn crps_scalar(ensemble: &[f64], truth: f64) -> f64 {
    assert!(!ensemble.is_empty(), "crps: empty ensemble");
    let m = ensemble.len() as f64;
    let e_xy: f64 = ensemble.iter().map(|x| (x - truth).abs()).sum::<f64>() / m;
    let mut e_xx = 0.0;
    for (i, xi) in ensemble.iter().enumerate() {
        for xj in &ensemble[i + 1..] {
            e_xx += (xi - xj).abs();
        }
    }
    e_xy - e_xx / (m * m)
}

/// Field-averaged ensemble CRPS: CRPS of each state variable against the
/// truth, averaged over variables. `members` is member-major with dimension
/// `dim` (same layout as [`crate::Ensemble`]).
pub fn crps_field(members: &[&[f64]], truth: &[f64]) -> f64 {
    assert!(!members.is_empty());
    let dim = truth.len();
    for m in members {
        assert_eq!(m.len(), dim, "crps_field: member/truth length mismatch");
    }
    let mut scratch = vec![0.0; members.len()];
    let mut total = 0.0;
    for v in 0..dim {
        for (s, m) in scratch.iter_mut().zip(members) {
            *s = m[v];
        }
        total += crps_scalar(&scratch, truth[v]);
    }
    total / dim as f64
}

/// Talagrand (rank) histogram accumulator: for each verification, records
/// the rank of the truth within the sorted ensemble values. A calibrated
/// ensemble gives a flat histogram; a U shape flags underdispersion (the
/// LETKF-divergence signature), a dome overdispersion.
#[derive(Debug, Clone, PartialEq)]
pub struct RankHistogram {
    counts: Vec<u64>,
}

impl RankHistogram {
    /// Histogram for ensembles of `members` members (`members + 1` bins).
    pub fn new(members: usize) -> Self {
        assert!(members >= 1);
        RankHistogram { counts: vec![0; members + 1] }
    }

    /// Adds one scalar verification: the truth's rank among the member
    /// values (ties broken toward the lower rank).
    pub fn push(&mut self, ensemble: &[f64], truth: f64) {
        assert_eq!(ensemble.len() + 1, self.counts.len(), "ensemble size mismatch");
        let rank = ensemble.iter().filter(|&&v| v < truth).count();
        self.counts[rank] += 1;
    }

    /// Adds every variable of a member-major ensemble against a truth field.
    pub fn push_field(&mut self, members: &[&[f64]], truth: &[f64]) {
        let mut scratch = vec![0.0; members.len()];
        for (v, t) in truth.iter().enumerate().map(|(i, t)| (i, *t)) {
            for (s, m) in scratch.iter_mut().zip(members) {
                *s = m[v];
            }
            self.push(&scratch, t);
        }
    }

    /// Raw bin counts (length `members + 1`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of verifications recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Flatness statistic: the chi-square distance of the histogram from
    /// uniform, normalized by bins (0 = perfectly flat). Values ≫ 1 flag
    /// miscalibration.
    pub fn chi_square_flatness(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let expected = total as f64 / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum::<f64>()
            / self.counts.len() as f64
    }

    /// U-shape indicator: mean of the two edge bins over the mean interior
    /// bin; > 1 means the truth escapes the ensemble too often
    /// (underdispersion).
    pub fn edge_ratio(&self) -> f64 {
        let n = self.counts.len();
        if n < 3 || self.total() == 0 {
            return 1.0;
        }
        let edges = (self.counts[0] + self.counts[n - 1]) as f64 / 2.0;
        let interior: f64 =
            self.counts[1..n - 1].iter().sum::<u64>() as f64 / (n - 2) as f64;
        edges / interior.max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_identical_is_zero() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(rmse(&x, &x), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors: 1, -1 -> rmse = 1
        assert!((rmse(&[1.0, 2.0], &[0.0, 3.0]) - 1.0).abs() < 1e-15);
        // errors: 3, 4 -> rmse = sqrt(12.5)
        assert!((rmse(&[3.0, 4.0], &[0.0, 0.0]) - 12.5f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn bias_and_mae() {
        assert!((bias(&[2.0, 4.0], &[1.0, 1.0]) - 2.0).abs() < 1e-15);
        assert!((mae(&[2.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-15);
        // bias can cancel where mae cannot
        assert_eq!(bias(&[1.0, -1.0], &[0.0, 0.0]), 0.0);
        assert_eq!(mae(&[1.0, -1.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn correlation_bounds_and_signs() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pattern_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pattern_correlation(&a, &c) + 1.0).abs() < 1e-12);
        let flat = vec![5.0; 4];
        assert_eq!(pattern_correlation(&a, &flat), 0.0);
    }

    #[test]
    fn crps_of_perfect_deterministic_forecast_is_zero() {
        assert!(crps_scalar(&[2.0], 2.0).abs() < 1e-15);
    }

    #[test]
    fn crps_penalizes_distance() {
        let ens = [0.0, 0.1, -0.1];
        let near = crps_scalar(&ens, 0.0);
        let far = crps_scalar(&ens, 5.0);
        assert!(far > near);
    }

    #[test]
    fn crps_rewards_calibrated_spread_over_overconfidence() {
        // Truth drawn away from the ensemble mean: a spread ensemble beats a
        // collapsed (overconfident) one.
        let collapsed = [1.0, 1.0, 1.0, 1.0];
        let spread = [0.0, 0.5, 1.5, 2.0];
        let truth = 2.0;
        assert!(crps_scalar(&spread, truth) < crps_scalar(&collapsed, truth));
    }

    #[test]
    fn crps_field_averages() {
        let m1 = vec![0.0, 1.0];
        let m2 = vec![2.0, 1.0];
        let truth = vec![1.0, 1.0];
        let got = crps_field(&[&m1, &m2], &truth);
        let want = (crps_scalar(&[0.0, 2.0], 1.0) + crps_scalar(&[1.0, 1.0], 1.0)) / 2.0;
        assert!((got - want).abs() < 1e-15);
    }

    #[test]
    fn rank_histogram_flat_for_calibrated_ensemble() {
        use crate::gaussian::standard_normal;
        use crate::rng::seeded;
        let mut rng = seeded(3);
        let members = 9;
        let mut h = RankHistogram::new(members);
        for _ in 0..20_000 {
            // Truth and members drawn from the same distribution.
            let ens: Vec<f64> = (0..members).map(|_| standard_normal(&mut rng)).collect();
            let truth = standard_normal(&mut rng);
            h.push(&ens, truth);
        }
        assert_eq!(h.total(), 20_000);
        assert!(h.chi_square_flatness() < 3.0, "chi2 {}", h.chi_square_flatness());
        assert!((h.edge_ratio() - 1.0).abs() < 0.25, "edge ratio {}", h.edge_ratio());
    }

    #[test]
    fn rank_histogram_u_shape_for_underdispersed_ensemble() {
        use crate::gaussian::standard_normal;
        use crate::rng::seeded;
        let mut rng = seeded(5);
        let mut h = RankHistogram::new(9);
        for _ in 0..5000 {
            // Ensemble spread 0.2 vs truth spread 1: truth often outside.
            let ens: Vec<f64> = (0..9).map(|_| 0.2 * standard_normal(&mut rng)).collect();
            let truth = standard_normal(&mut rng);
            h.push(&ens, truth);
        }
        assert!(h.edge_ratio() > 3.0, "expected U shape, edge ratio {}", h.edge_ratio());
        assert!(h.chi_square_flatness() > 10.0);
    }

    #[test]
    fn rank_histogram_field_accumulation() {
        let mut h = RankHistogram::new(2);
        let m1 = vec![0.0, 10.0];
        let m2 = vec![1.0, 11.0];
        // truth below both members at var 0 (rank 0), above both at var 1.
        h.push_field(&[&m1, &m2], &[-1.0, 12.0]);
        assert_eq!(h.counts(), &[1, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn rmse_length_mismatch_panics() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
