//! Numerically stable softmax / log-sum-exp over slices.
//!
//! The EnSF Monte-Carlo score is a softmax over scaled squared distances
//! whose raw exponents are O(−10⁴) in high dimension; both entry points use
//! the max-shift (log-sum-exp) trick so weights neither overflow nor turn
//! into a 0/0.

/// Log of the sum of exponentials, `ln Σ exp(x_i)`, computed with the
/// max-shift trick. Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        if x > max {
            max = x;
        }
    }
    if !max.is_finite() {
        return max;
    }
    let mut total = 0.0;
    for &x in xs {
        total += (x - max).exp();
    }
    max + total.ln()
}

/// Converts log-weights to normalized weights in place and returns the
/// log-normalizer `ln Σ exp(x_i)`.
///
/// Entries whose shifted exponent underflows become exactly `0.0`, matching
/// the reference EnSF score path (which skips such members). All reductions
/// run in ascending index order, so the result is deterministic and
/// independent of any outer parallel decomposition.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn softmax_in_place(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let mut max = f64::NEG_INFINITY;
    for &x in xs.iter() {
        if x > max {
            max = x;
        }
    }
    let mut total = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        total += *x;
    }
    let inv_total = 1.0 / total;
    for x in xs.iter_mut() {
        *x *= inv_total;
    }
    max + total.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let xs = [0.3, -1.2, 2.0, 0.0];
        let naive: f64 = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_extreme_exponents() {
        let lse = log_sum_exp(&[-1e5, -1e5 + 1.0]);
        assert!(lse.is_finite());
        let want = -1e5 + 1.0 + (-1.0f64).exp().ln_1p();
        assert!((lse - want).abs() < 1e-9);
        let empty: [f64; 0] = [];
        assert_eq!(log_sum_exp(&empty), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_normalizes_and_returns_log_normalizer() {
        let mut xs = [1.0, 2.0, 3.0];
        let lse = softmax_in_place(&mut xs);
        let sum: f64 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
        assert!((lse - log_sum_exp(&[1.0, 2.0, 3.0])).abs() < 1e-12);
    }

    #[test]
    fn softmax_underflow_yields_exact_zeros() {
        let mut xs = [0.0, -800.0];
        softmax_in_place(&mut xs);
        assert_eq!(xs[1], 0.0, "distant member must underflow to an exact zero");
        assert!((xs[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_softmax_rejected() {
        softmax_in_place(&mut []);
    }
}
