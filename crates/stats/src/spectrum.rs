//! Isotropic kinetic-energy spectra.
//!
//! The SQG model's claim to realism is its `k^{-5/3}` KE spectrum
//! (Nastrom & Gage); these helpers bin a 2-D spectral field into isotropic
//! wavenumber shells and fit the inertial-range slope so tests can assert it.

use fft::Complex;

/// Isotropic power spectrum of a 2-D complex spectral field.
///
/// `spec` is the unnormalized forward FFT of an `n x n` real field; the
/// result has `n/2` shells, shell `k` collecting `|spec|^2 / n^4` over all
/// integer wavevectors with `round(|k_vec|) == k`.
pub fn isotropic_spectrum(spec: &[Complex], n: usize) -> Vec<f64> {
    assert_eq!(spec.len(), n * n, "spectrum buffer must be n*n");
    let half = n / 2;
    let mut shells = vec![0.0f64; half.max(1)];
    let norm = 1.0 / (n as f64).powi(4);
    for ky_idx in 0..n {
        // Map FFT index to signed wavenumber.
        let ky = signed_wavenumber(ky_idx, n);
        for kx_idx in 0..n {
            let kx = signed_wavenumber(kx_idx, n);
            let kmag = ((kx * kx + ky * ky) as f64).sqrt();
            let shell = kmag.round() as usize;
            if shell < shells.len() {
                shells[shell] += spec[ky_idx * n + kx_idx].norm_sqr() * norm;
            }
        }
    }
    shells
}

/// Maps an FFT bin index to its signed integer wavenumber.
#[inline]
pub fn signed_wavenumber(idx: usize, n: usize) -> i64 {
    if idx <= n / 2 {
        idx as i64
    } else {
        idx as i64 - n as i64
    }
}

/// Least-squares slope of `log(E)` vs `log(k)` over shells
/// `k in [k_min, k_max]`, skipping empty shells. Returns `None` when fewer
/// than two usable shells exist.
pub fn fit_loglog_slope(shells: &[f64], k_min: usize, k_max: usize) -> Option<f64> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in k_min..=k_max.min(shells.len().saturating_sub(1)) {
        if k == 0 || shells[k] <= 0.0 {
            continue;
        }
        xs.push((k as f64).ln());
        ys.push(shells[k].ln());
    }
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den == 0.0 { // lint: allow(float-exact-compare, reason="exactly-zero denominator is the degenerate-input sentinel")
        None
    } else {
        Some(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::rfft2;

    #[test]
    fn signed_wavenumber_mapping() {
        assert_eq!(signed_wavenumber(0, 8), 0);
        assert_eq!(signed_wavenumber(3, 8), 3);
        assert_eq!(signed_wavenumber(4, 8), 4);
        assert_eq!(signed_wavenumber(5, 8), -3);
        assert_eq!(signed_wavenumber(7, 8), -1);
    }

    #[test]
    fn single_mode_lands_in_correct_shell() {
        let n = 32;
        let k0 = 5usize;
        let field: Vec<f64> = (0..n * n)
            .map(|i| {
                let x = (i % n) as f64;
                (2.0 * std::f64::consts::PI * k0 as f64 * x / n as f64).cos()
            })
            .collect();
        let spec = rfft2(&field, n, n);
        let shells = isotropic_spectrum(&spec, n);
        let total: f64 = shells.iter().sum();
        assert!(shells[k0] / total > 0.999, "energy not in shell {k0}: {shells:?}");
    }

    #[test]
    fn parseval_shells_sum_to_variance() {
        // For a zero-mean field, sum of shells ~= spatial mean square
        // (up to energy falling outside the n/2 shell cap).
        let n = 64;
        let field: Vec<f64> = (0..n * n)
            .map(|i| {
                let x = (i % n) as f64;
                let y = (i / n) as f64;
                (2.0 * std::f64::consts::PI * 3.0 * x / n as f64).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 7.0 * y / n as f64).cos()
            })
            .collect();
        let msq: f64 = field.iter().map(|v| v * v).sum::<f64>() / (n * n) as f64;
        let spec = rfft2(&field, n, n);
        let total: f64 = isotropic_spectrum(&spec, n).iter().sum();
        assert!((total - msq).abs() < 1e-10, "{total} vs {msq}");
    }

    #[test]
    fn slope_fit_recovers_synthetic_power_law() {
        // Build shells E(k) = k^{-5/3} directly.
        let shells: Vec<f64> =
            (0..64).map(|k| if k == 0 { 0.0 } else { (k as f64).powf(-5.0 / 3.0) }).collect();
        let slope = fit_loglog_slope(&shells, 4, 32).unwrap();
        assert!((slope + 5.0 / 3.0).abs() < 1e-10, "slope {slope}");
    }

    #[test]
    fn slope_fit_needs_two_points() {
        let shells = vec![0.0, 1.0, 0.0, 0.0];
        assert!(fit_loglog_slope(&shells, 1, 3).is_none());
    }
}
