//! Ensemble containers and statistics.
//!
//! An [`Ensemble`] is `M` state vectors of equal dimension `d`, stored
//! contiguously (member-major) so that per-member forecast loops and
//! per-variable statistics both stride predictably.

/// A collection of `M` equally sized state vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    dim: usize,
    data: Vec<f64>, // member-major: member m occupies data[m*dim..(m+1)*dim]
}

impl Ensemble {
    /// Creates an ensemble of `members` zero vectors of dimension `dim`.
    pub fn zeros(members: usize, dim: usize) -> Self {
        Ensemble { dim, data: vec![0.0; members * dim] }
    }

    /// Builds an ensemble from member vectors.
    ///
    /// # Panics
    /// Panics if members have inconsistent dimensions or the list is empty.
    pub fn from_members(members: &[Vec<f64>]) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let dim = members[0].len();
        let mut data = Vec::with_capacity(members.len() * dim);
        for m in members {
            assert_eq!(m.len(), dim, "ragged ensemble members");
            data.extend_from_slice(m);
        }
        Ensemble { dim, data }
    }

    /// Number of members `M`.
    pub fn members(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// State dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of member `m`.
    pub fn member(&self, m: usize) -> &[f64] {
        &self.data[m * self.dim..(m + 1) * self.dim]
    }

    /// Mutable borrow of member `m`.
    pub fn member_mut(&mut self, m: usize) -> &mut [f64] {
        &mut self.data[m * self.dim..(m + 1) * self.dim]
    }

    /// Iterator over members.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.dim)
    }

    /// Mutable iterator over members (for parallel forecast loops, pair with
    /// `par_chunks_mut` on [`Ensemble::as_mut_slice`]).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_mut(self.dim)
    }

    /// The raw member-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Ensemble mean vector (all zeros for an empty ensemble).
    pub fn mean(&self) -> Vec<f64> {
        let m = self.members();
        if m == 0 {
            return vec![0.0; self.dim];
        }
        let mut out = vec![0.0; self.dim];
        for member in self.iter() {
            for (o, x) in out.iter_mut().zip(member) {
                *o += x;
            }
        }
        let inv = 1.0 / m as f64;
        for o in &mut out {
            *o *= inv;
        }
        out
    }

    /// Per-variable ensemble variance (unbiased, divides by `M - 1`).
    ///
    /// Degenerate ensembles (`M < 2`) carry no sampled spread: the variance
    /// is defined as all zeros rather than panicking or dividing by zero,
    /// so health checks on collapsed/quarantined ensembles stay total.
    pub fn variance(&self) -> Vec<f64> {
        let m = self.members();
        if m < 2 {
            return vec![0.0; self.dim];
        }
        let mean = self.mean();
        let mut var = vec![0.0; self.dim];
        for member in self.iter() {
            for ((v, x), mu) in var.iter_mut().zip(member).zip(&mean) {
                let d = x - mu;
                *v += d * d;
            }
        }
        let inv = 1.0 / (m - 1) as f64;
        for v in &mut var {
            *v *= inv;
        }
        var
    }

    /// Scalar ensemble spread: sqrt of the mean of the per-variable variances.
    /// This is the quantity RTPS inflation relaxes. Zero for degenerate
    /// ensembles (`M < 2` or zero-dimensional states).
    pub fn spread(&self) -> f64 {
        if self.dim == 0 {
            return 0.0;
        }
        let var = self.variance();
        (var.iter().sum::<f64>() / self.dim as f64).sqrt()
    }

    /// Anomalies (deviations from the mean), same layout as the ensemble.
    pub fn anomalies(&self) -> Ensemble {
        let mean = self.mean();
        let mut out = self.clone();
        for member in out.iter_mut() {
            for (x, mu) in member.iter_mut().zip(&mean) {
                *x -= mu;
            }
        }
        out
    }

    /// Recentres the ensemble on `new_mean` keeping the anomalies.
    pub fn recenter(&mut self, new_mean: &[f64]) {
        assert_eq!(new_mean.len(), self.dim);
        let old = self.mean();
        for member in self.iter_mut() {
            for ((x, om), nm) in member.iter_mut().zip(&old).zip(new_mean) {
                *x += nm - om;
            }
        }
    }

    /// Scales all anomalies by `factor` about the current mean
    /// (multiplicative covariance inflation).
    pub fn inflate(&mut self, factor: f64) {
        let mean = self.mean();
        for member in self.iter_mut() {
            for (x, mu) in member.iter_mut().zip(&mean) {
                *x = mu + factor * (*x - mu);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ensemble {
        Ensemble::from_members(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
        ])
    }

    #[test]
    fn shape_and_access() {
        let e = small();
        assert_eq!(e.members(), 3);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.member(1), &[3.0, 4.0]);
    }

    #[test]
    fn mean_and_variance() {
        let e = small();
        assert_eq!(e.mean(), vec![3.0, 4.0]);
        // variance per variable: ((1-3)^2 + 0 + (5-3)^2)/2 = 4
        assert_eq!(e.variance(), vec![4.0, 4.0]);
        assert!((e.spread() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn anomalies_sum_to_zero() {
        let e = small();
        let a = e.anomalies();
        let s = a.mean();
        assert!(s.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn recenter_preserves_spread() {
        let mut e = small();
        let sp = e.spread();
        e.recenter(&[10.0, -10.0]);
        assert_eq!(e.mean(), vec![10.0, -10.0]);
        assert!((e.spread() - sp).abs() < 1e-12);
    }

    #[test]
    fn inflate_scales_spread() {
        let mut e = small();
        let sp = e.spread();
        e.inflate(1.5);
        assert!((e.spread() - 1.5 * sp).abs() < 1e-12);
        // mean unchanged
        assert_eq!(e.mean(), vec![3.0, 4.0]);
    }

    #[test]
    fn inflate_by_one_is_identity() {
        let mut e = small();
        let before = e.clone();
        e.inflate(1.0);
        for (a, b) in e.iter().zip(before.iter()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-14);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::from_members(&[]);
    }

    #[test]
    fn degenerate_ensembles_have_defined_statistics() {
        // M = 1: no sampled spread, but no panic / NaN either.
        let single = Ensemble::from_members(&[vec![1.0, -2.0]]);
        assert_eq!(single.mean(), vec![1.0, -2.0]);
        assert_eq!(single.variance(), vec![0.0, 0.0]);
        assert_eq!(single.spread(), 0.0);
        // M = 0 (constructed via zeros): everything zero and finite.
        let empty = Ensemble::zeros(0, 3);
        assert_eq!(empty.members(), 0);
        assert_eq!(empty.mean(), vec![0.0; 3]);
        assert_eq!(empty.variance(), vec![0.0; 3]);
        assert!(empty.spread().is_finite());
        // dim = 0: spread must not divide 0/0.
        let flat = Ensemble::zeros(4, 0);
        assert_eq!(flat.spread(), 0.0);
    }

    #[test]
    #[should_panic]
    fn ragged_members_rejected() {
        let _ = Ensemble::from_members(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
