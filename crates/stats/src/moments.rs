//! Online (streaming) moment accumulation.
//!
//! Long OSSE runs record RMSE/spread series over thousands of cycles; the
//! Welford accumulator lets the harness track means and variances without
//! storing the series, and merges across rayon workers.

/// Numerically stable running mean/variance (Welford), mergeable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineMoments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineMoments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_statistics() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0).collect();
        let mut acc = OnlineMoments::new();
        acc.extend(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.variance() - var).abs() < 1e-12);
        assert_eq!(acc.count(), 100);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = (50..100).map(|i| (i as f64).sqrt()).collect();
        let mut whole = OnlineMoments::new();
        whole.extend(xs.iter().copied().chain(ys.iter().copied()));
        let mut a = OnlineMoments::new();
        a.extend(xs.iter().copied());
        let mut b = OnlineMoments::new();
        b.extend(ys.iter().copied());
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn empty_and_single() {
        let mut acc = OnlineMoments::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        acc.push(5.0);
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), 5.0);
        assert_eq!(acc.max(), 5.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineMoments::new());
        assert_eq!(a, before);
        let mut empty = OnlineMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
