//! # stats — stochastic & statistical substrate
//!
//! Shared statistical machinery for the DA framework:
//!
//! - [`rng`] — explicit seeding and per-member stream splitting, so whole
//!   OSSE experiments are bit-reproducible even under rayon parallelism.
//! - [`gaussian`] — Box–Muller standard normals and Cholesky-colored
//!   multivariate sampling (no external distribution crates).
//! - [`Ensemble`] — member-major ensemble container with mean/variance/
//!   spread/anomaly/inflation operations used by both filters.
//! - [`metrics`] — RMSE/bias/MAE/pattern-correlation/CRPS verification.
//! - [`diagnostics`] — DA consistency statistics: innovation moments,
//!   chi-squared calibration, rank histograms, spread–skill ratio.
//! - [`softmax`] — stable log-sum-exp / softmax reductions (the EnSF score
//!   weights in batched form).
//! - [`spectrum`] — isotropic KE spectra and inertial-range slope fitting
//!   (the `k^{-5/3}` check).
//! - [`OnlineMoments`] — mergeable Welford accumulators for long series.

#![warn(missing_docs)]
// Every unsafe operation must sit in its own audited `unsafe { }` block.
#![deny(unsafe_op_in_unsafe_fn)]
// Spectral binning indexes shells and wavevectors at matched positions.
#![allow(clippy::needless_range_loop)]

pub mod diagnostics;
mod ensemble;
pub mod gaussian;
pub mod metrics;
mod moments;
pub mod rng;
pub mod softmax;
pub mod spectrum;

pub use ensemble::Ensemble;
pub use moments::OnlineMoments;
