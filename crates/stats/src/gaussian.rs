//! Gaussian sampling.
//!
//! Standard normals via a 256-layer ziggurat (no external distribution
//! crate), plus correlated sampling through a Cholesky factor. The EnSF
//! update consumes O(M · d · n_steps) standard normals per analysis cycle —
//! tens of millions per OSSE run — so [`standard_normal`] is engineered for
//! the common case: one 64-bit RNG word, one table lookup, one multiply and
//! one compare (~98.5% of draws take that path; the rest fall into the
//! wedge/tail rejection). This replaced a polar Box–Muller sampler whose
//! per-draw `ln`/`sqrt` dominated the reverse-SDE noise cost.
//!
//! The sampler is exact (the ziggurat is a rejection method, not an
//! approximation) and deterministic: tables are fixed at first use from
//! closed-form constants, so a given RNG stream always maps to the same
//! sample stream.

use linalg::Cholesky;
use rand::Rng;
use std::sync::OnceLock;

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 256;
/// Rightmost layer edge `R` for 256 layers (Marsaglia & Tsang).
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Common layer area `V` for 256 layers.
const ZIG_V: f64 = 0.004_928_673_233_992_336;
/// Scale turning the top 53 bits of a word into a uniform in `[0, 1)`.
const U53: f64 = 1.0 / (1u64 << 53) as f64;

/// Layer edges `x[i]` (descending, `x[0]` is the virtual base-strip edge,
/// `x[1] = R`, `x[256] = 0`), the pdf values `f[i] = exp(-x[i]²/2)`, and
/// the premultiplied widths `w[i] = x[i] · 2⁻⁵³` so the fast path maps the
/// raw 53-bit integer to a candidate with a single multiply. (2⁻⁵³ is a
/// power of two, so `u53 · w[i]` is bitwise identical to `(u53 · 2⁻⁵³) ·
/// x[i]` — the premultiply changes no sample.)
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
    w: [f64; ZIG_LAYERS],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut f = [0.0; ZIG_LAYERS + 1];
        // Virtual base strip: width chosen so area x[0]·f(R) equals V.
        x[0] = ZIG_V / pdf(ZIG_R);
        x[1] = ZIG_R;
        f[0] = 0.0; // unused: layer 0 resolves via the tail, never the wedge
        f[1] = pdf(x[1]);
        // Each layer above has the same area V: f grows by V / x[i].
        for i in 2..ZIG_LAYERS {
            f[i] = f[i - 1] + ZIG_V / x[i - 1];
            x[i] = (-2.0 * f[i].ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        f[ZIG_LAYERS] = 1.0;
        let mut w = [0.0; ZIG_LAYERS];
        for i in 0..ZIG_LAYERS {
            w[i] = x[i] * U53;
        }
        ZigTables { x, f, w }
    })
}

/// Ziggurat draw against a resolved table reference — lets bulk fills hoist
/// the table lookup out of their loop.
#[inline(always)]
fn standard_normal_with<R: Rng + ?Sized>(t: &ZigTables, rng: &mut R) -> f64 {
    loop {
        // One word funds the layer index (8 bits), the sign (1 bit) and a
        // 53-bit uniform; draws stay a strict function of the u64 stream.
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // Branchless sign: the 50/50 sign branch would mispredict half the
        // time; OR-ing bit 8 into the IEEE sign bit is bitwise identical to
        // multiplying the (nonnegative) candidate by ±1.0.
        let sign_bit = (bits & 0x100) << 55;
        let sign = f64::from_bits(1.0f64.to_bits() | sign_bit);
        let x = (bits >> 11) as f64 * t.w[i];
        if x < t.x[i + 1] {
            return f64::from_bits(x.to_bits() | sign_bit); // inside the layer: accept (~98.5%)
        }
        if i == 0 {
            // Tail (|x| > R): Marsaglia's exact tail sampler.
            loop {
                let u1: f64 = rng.random();
                let u2: f64 = rng.random();
                let tx = -(1.0 - u1).ln() / ZIG_R;
                let ty = -(1.0 - u2).ln();
                if 2.0 * ty > tx * tx {
                    return sign * (ZIG_R + tx);
                }
            }
        }
        // Wedge: accept with probability proportional to the pdf overhang.
        let u2: f64 = rng.random();
        if t.f[i] + u2 * (t.f[i + 1] - t.f[i]) < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

/// Draws one standard normal sample (ziggurat method).
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    standard_normal_with(zig_tables(), rng)
}

/// Resolved-table sampling handle for hot loops that draw millions of
/// normals: hoists the one-time table resolution (an atomic load per
/// [`standard_normal`] call) out of the loop. Draws are bitwise identical
/// to [`standard_normal`] on the same RNG stream.
#[derive(Clone, Copy)]
pub struct NormalSampler {
    tables: &'static ZigTables,
}

impl NormalSampler {
    /// Resolves the ziggurat tables once.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        NormalSampler { tables: zig_tables() }
    }

    /// Draws one standard normal sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal_with(self.tables, rng)
    }
}

/// Fills `out` with i.i.d. standard normals.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let t = zig_tables();
    for x in out.iter_mut() {
        *x = standard_normal_with(t, rng);
    }
}

/// Returns a fresh vector of `n` i.i.d. standard normals.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    fill_standard_normal(rng, &mut v);
    v
}

/// Draws `x ~ N(mean, sigma^2)` elementwise with a shared scalar sigma.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, mean: &[f64], sigma: f64) -> Vec<f64> {
    mean.iter().map(|&m| m + sigma * standard_normal(rng)).collect()
}

/// Draws a sample from `N(mean, Sigma)` given the Cholesky factor of `Sigma`.
pub fn multivariate_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: &[f64],
    chol: &Cholesky,
) -> Vec<f64> {
    let z = standard_normal_vec(rng, mean.len());
    let mut x = chol.apply_l(&z);
    for (xi, mi) in x.iter_mut().zip(mean) {
        *xi += mi;
    }
    x
}

/// Log-density of `N(mean, sigma^2 I)` evaluated at `x`, up to the additive
/// normalization constant (which cancels in every score/weight computation).
pub fn log_density_isotropic(x: &[f64], mean: &[f64], sigma: f64) -> f64 {
    debug_assert_eq!(x.len(), mean.len());
    let inv2s2 = 0.5 / (sigma * sigma);
    -x.iter().zip(mean).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() * inv2s2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use linalg::{gemm, Matrix};

    #[test]
    fn moments_of_standard_normal() {
        let mut rng = seeded(11);
        let n = 200_000;
        let xs = standard_normal_vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew = xs.iter().map(|x| x.powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
    }

    #[test]
    fn normal_sampler_matches_standard_normal_bitwise() {
        // The resolved-table handle is a pure call-overhead optimization:
        // same RNG stream in, same bits out.
        let mut r1 = seeded(97);
        let mut r2 = seeded(97);
        let sampler = NormalSampler::new();
        for _ in 0..50_000 {
            assert_eq!(
                standard_normal(&mut r1).to_bits(),
                sampler.sample(&mut r2).to_bits()
            );
        }
    }

    #[test]
    fn kurtosis_is_gaussian() {
        let mut rng = seeded(23);
        let n = 200_000;
        let xs = standard_normal_vec(&mut rng, n);
        let kurt = xs.iter().map(|x| x.powi(4)).sum::<f64>() / n as f64;
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn normal_vec_shifts_and_scales() {
        let mut rng = seeded(7);
        let mean = vec![5.0; 50_000];
        let xs = normal_vec(&mut rng, &mean, 2.0);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.05);
        assert!((v - 4.0).abs() < 0.1);
    }

    #[test]
    fn multivariate_respects_covariance() {
        // Sigma = [[2, 1], [1, 2]]
        let sigma = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let chol = linalg::Cholesky::new(&sigma).unwrap();
        let mut rng = seeded(31);
        let n = 100_000;
        let mut s = Matrix::zeros(2, 2);
        let mean = [1.0, -1.0];
        let mut msum = [0.0f64; 2];
        let samples: Vec<Vec<f64>> =
            (0..n).map(|_| multivariate_normal(&mut rng, &mean, &chol)).collect();
        for x in &samples {
            msum[0] += x[0];
            msum[1] += x[1];
        }
        let m = [msum[0] / n as f64, msum[1] / n as f64];
        for x in &samples {
            let d = [x[0] - m[0], x[1] - m[1]];
            for r in 0..2 {
                for c in 0..2 {
                    s[(r, c)] += d[r] * d[c] / n as f64;
                }
            }
        }
        assert!((m[0] - 1.0).abs() < 0.02 && (m[1] + 1.0).abs() < 0.02);
        assert!(s.sub(&sigma).norm_max() < 0.05, "{s:?}");
        // sanity: the Cholesky factor actually reproduces sigma
        let back = gemm::matmul_a_bt(chol.l(), chol.l());
        assert!(back.sub(&sigma).norm_max() < 1e-12);
    }

    #[test]
    fn log_density_peaks_at_mean() {
        let mean = [0.5, -0.5, 1.0];
        let at_mean = log_density_isotropic(&mean, &mean, 1.0);
        let off = log_density_isotropic(&[0.0, 0.0, 0.0], &mean, 1.0);
        assert_eq!(at_mean, 0.0);
        assert!(off < at_mean);
    }

    #[test]
    fn log_density_scales_with_sigma() {
        let x = [1.0];
        let m = [0.0];
        let tight = log_density_isotropic(&x, &m, 0.5);
        let loose = log_density_isotropic(&x, &m, 2.0);
        assert!(tight < loose, "tighter sigma should penalize more");
    }
}
