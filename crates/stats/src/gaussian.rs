//! Gaussian sampling.
//!
//! Standard normals via the polar Box–Muller method (no external
//! distribution crate), plus correlated sampling through a Cholesky factor.
//! The EnSF update consumes O(M · d · n_steps) standard normals per analysis
//! cycle, so [`fill_standard_normal`] is the hot entry point.

use linalg::Cholesky;
use rand::Rng;

/// Draws one standard normal sample.
///
/// Polar (Marsaglia) variant of Box–Muller: rejection keeps us clear of the
/// log singularity, and we intentionally do not cache the spare value so the
/// stream layout stays simple and reproducible across refactors.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills `out` with i.i.d. standard normals.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for x in out.iter_mut() {
        *x = standard_normal(rng);
    }
}

/// Returns a fresh vector of `n` i.i.d. standard normals.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    fill_standard_normal(rng, &mut v);
    v
}

/// Draws `x ~ N(mean, sigma^2)` elementwise with a shared scalar sigma.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, mean: &[f64], sigma: f64) -> Vec<f64> {
    mean.iter().map(|&m| m + sigma * standard_normal(rng)).collect()
}

/// Draws a sample from `N(mean, Sigma)` given the Cholesky factor of `Sigma`.
pub fn multivariate_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: &[f64],
    chol: &Cholesky,
) -> Vec<f64> {
    let z = standard_normal_vec(rng, mean.len());
    let mut x = chol.apply_l(&z);
    for (xi, mi) in x.iter_mut().zip(mean) {
        *xi += mi;
    }
    x
}

/// Log-density of `N(mean, sigma^2 I)` evaluated at `x`, up to the additive
/// normalization constant (which cancels in every score/weight computation).
pub fn log_density_isotropic(x: &[f64], mean: &[f64], sigma: f64) -> f64 {
    debug_assert_eq!(x.len(), mean.len());
    let inv2s2 = 0.5 / (sigma * sigma);
    -x.iter().zip(mean).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() * inv2s2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use linalg::{gemm, Matrix};

    #[test]
    fn moments_of_standard_normal() {
        let mut rng = seeded(11);
        let n = 200_000;
        let xs = standard_normal_vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew = xs.iter().map(|x| x.powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
    }

    #[test]
    fn kurtosis_is_gaussian() {
        let mut rng = seeded(23);
        let n = 200_000;
        let xs = standard_normal_vec(&mut rng, n);
        let kurt = xs.iter().map(|x| x.powi(4)).sum::<f64>() / n as f64;
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn normal_vec_shifts_and_scales() {
        let mut rng = seeded(7);
        let mean = vec![5.0; 50_000];
        let xs = normal_vec(&mut rng, &mean, 2.0);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.05);
        assert!((v - 4.0).abs() < 0.1);
    }

    #[test]
    fn multivariate_respects_covariance() {
        // Sigma = [[2, 1], [1, 2]]
        let sigma = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let chol = linalg::Cholesky::new(&sigma).unwrap();
        let mut rng = seeded(31);
        let n = 100_000;
        let mut s = Matrix::zeros(2, 2);
        let mean = [1.0, -1.0];
        let mut msum = [0.0f64; 2];
        let samples: Vec<Vec<f64>> =
            (0..n).map(|_| multivariate_normal(&mut rng, &mean, &chol)).collect();
        for x in &samples {
            msum[0] += x[0];
            msum[1] += x[1];
        }
        let m = [msum[0] / n as f64, msum[1] / n as f64];
        for x in &samples {
            let d = [x[0] - m[0], x[1] - m[1]];
            for r in 0..2 {
                for c in 0..2 {
                    s[(r, c)] += d[r] * d[c] / n as f64;
                }
            }
        }
        assert!((m[0] - 1.0).abs() < 0.02 && (m[1] + 1.0).abs() < 0.02);
        assert!(s.sub(&sigma).norm_max() < 0.05, "{s:?}");
        // sanity: the Cholesky factor actually reproduces sigma
        let back = gemm::matmul_a_bt(chol.l(), chol.l());
        assert!(back.sub(&sigma).norm_max() < 1e-12);
    }

    #[test]
    fn log_density_peaks_at_mean() {
        let mean = [0.5, -0.5, 1.0];
        let at_mean = log_density_isotropic(&mean, &mean, 1.0);
        let off = log_density_isotropic(&[0.0, 0.0, 0.0], &mean, 1.0);
        assert_eq!(at_mean, 0.0);
        assert!(off < at_mean);
    }

    #[test]
    fn log_density_scales_with_sigma() {
        let x = [1.0];
        let m = [0.0];
        let tight = log_density_isotropic(&x, &m, 0.5);
        let loose = log_density_isotropic(&x, &m, 2.0);
        assert!(tight < loose, "tighter sigma should penalize more");
    }
}
