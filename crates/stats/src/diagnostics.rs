//! Statistical consistency diagnostics for ensemble data assimilation.
//!
//! The pure numerical half of the observability layer: innovation moments,
//! the chi-squared innovation-consistency statistic (the Desroziers check
//! `E[d dᵀ] = H P_b Hᵀ + R` collapsed to its diagonal), ensemble rank
//! histograms, and the spread–skill ratio. Everything here is plain
//! deterministic arithmetic on slices and [`Ensemble`]s — the wiring into
//! telemetry records lives in `da_core::diagnostics`.

use crate::Ensemble;

/// Mean and (population) variance of a residual sample.
///
/// Returns `(0.0, 0.0)` for an empty sample so downstream serialization
/// never sees NaN.
pub fn moments(d: &[f64]) -> (f64, f64) {
    if d.is_empty() {
        return (0.0, 0.0);
    }
    let n = d.len() as f64;
    let mean = d.iter().sum::<f64>() / n;
    let var = d.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Mean and variance of the residual `y − mean` over matched components.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn residual_moments(mean: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(mean.len(), y.len(), "residual operands must match");
    if y.is_empty() {
        return (0.0, 0.0);
    }
    let n = y.len() as f64;
    let sum: f64 = y.iter().zip(mean).map(|(o, f)| o - f).sum();
    let m = sum / n;
    let var = y.iter().zip(mean).map(|(o, f)| (o - f - m) * (o - f - m)).sum::<f64>() / n;
    (m, var)
}

/// Chi-squared innovation consistency per degree of freedom:
/// `mean_i d_i² / (σ_b,i² + σ_obs²)` with `d = y − forecast mean` and
/// `σ_b,i²` the per-variable forecast ensemble variance.
///
/// A well-calibrated filter sits near 1; ≫ 1 means the innovations are
/// larger than the filter's own uncertainty budget explains
/// (overconfidence), ≪ 1 means the ensemble is overdispersive.
///
/// # Panics
/// Panics if `y` does not match the ensemble dimension or `sigma_obs` is
/// not positive.
pub fn chi_squared(forecast: &Ensemble, y: &[f64], sigma_obs: f64) -> f64 {
    assert_eq!(y.len(), forecast.dim(), "observation/ensemble dimension mismatch");
    assert!(sigma_obs > 0.0, "observation sigma must be positive");
    if y.is_empty() {
        return 0.0;
    }
    let mean = forecast.mean();
    let var = forecast.variance();
    let r = sigma_obs * sigma_obs;
    let sum: f64 = y
        .iter()
        .zip(&mean)
        .zip(&var)
        .map(|((o, f), v)| {
            let d = o - f;
            d * d / (v + r)
        })
        .sum();
    sum / y.len() as f64
}

/// Ensemble rank histogram (Talagrand diagram) of `y` against the
/// ensemble, sampled every `stride` components: `M + 1` bins, bin `k`
/// counting components where exactly `k` members fall below the observed
/// value. Flat ⇒ the observation is statistically indistinguishable from a
/// member; U-shaped ⇒ underdispersion; dome ⇒ overdispersion.
///
/// Non-finite member values never count as "below" (NaN comparisons are
/// false), so a damaged member biases ranks low instead of poisoning the
/// histogram.
///
/// # Panics
/// Panics if `y` does not match the ensemble dimension or `stride` is zero.
pub fn rank_histogram(ens: &Ensemble, y: &[f64], stride: usize) -> Vec<u64> {
    assert_eq!(y.len(), ens.dim(), "observation/ensemble dimension mismatch");
    assert!(stride > 0, "stride must be positive");
    let members = ens.members();
    let mut hist = vec![0u64; members + 1];
    for i in (0..y.len()).step_by(stride) {
        let rank = (0..members).filter(|&m| ens.member(m)[i] < y[i]).count();
        hist[rank] += 1;
    }
    hist
}

/// Sampling stride that keeps a rank histogram near 256 sampled
/// components regardless of state dimension.
pub fn rank_histogram_stride(dim: usize) -> usize {
    (dim / 256).max(1)
}

/// Spread–skill ratio `spread / skill`, returning `0.0` when the skill
/// (error) is not positive so the ratio is always finite. Near 1 for a
/// calibrated ensemble; ≪ 1 flags overconfidence (tiny spread against a
/// large error — the divergence signature the supervisor watches for).
pub fn spread_skill(spread: f64, skill: f64) -> f64 {
    if skill > 0.0 && spread.is_finite() {
        spread / skill
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::standard_normal;
    use crate::rng::seeded;

    #[test]
    fn moments_of_known_sample() {
        let (m, v) = moments(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-15);
        assert!((v - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(moments(&[]), (0.0, 0.0));
    }

    #[test]
    fn residual_moments_match_direct_computation() {
        let mean = [1.0, 1.0, 1.0, 1.0];
        let y = [1.5, 0.5, 1.5, 0.5];
        let (m, v) = residual_moments(&mean, &y);
        assert!(m.abs() < 1e-15, "symmetric residuals have zero mean");
        assert!((v - 0.25).abs() < 1e-15);
        assert_eq!(residual_moments(&[], &[]), (0.0, 0.0));
    }

    #[test]
    fn chi_squared_is_near_one_for_calibrated_ensemble() {
        // Truth ~ N(0, 1) (same prior the members sample), members
        // ~ N(0, 1), obs = truth + N(0, sigma^2): the innovation variance
        // is 1 + sigma^2 (+ 1/M mean noise), which var_b + sigma^2 should
        // explain.
        let members = 40;
        let dim = 400;
        let sigma = 0.5;
        let mut rng = seeded(17);
        let mut ens = Ensemble::zeros(members, dim);
        for m in 0..members {
            for x in ens.member_mut(m) {
                *x = standard_normal(&mut rng);
            }
        }
        let y: Vec<f64> = (0..dim)
            .map(|_| standard_normal(&mut rng) + sigma * standard_normal(&mut rng))
            .collect();
        let chi2 = chi_squared(&ens, &y, sigma);
        assert!((0.5..2.0).contains(&chi2), "calibrated chi2 near 1, got {chi2}");
    }

    #[test]
    fn chi_squared_flags_overconfidence() {
        // Near-zero spread with a large innovation: chi2 explodes.
        let ens = Ensemble::from_members(&[vec![0.0, 0.0], vec![1e-6, 1e-6]]);
        let chi2 = chi_squared(&ens, &[1.0, 1.0], 0.01);
        assert!(chi2 > 100.0, "overconfident filter must score high, got {chi2}");
    }

    #[test]
    fn rank_histogram_extremes_and_shape() {
        let ens = Ensemble::from_members(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        // Observation below every member: rank 0 everywhere.
        assert_eq!(rank_histogram(&ens, &[0.0, 0.0], 1), vec![2, 0, 0, 0]);
        // Observation above every member: rank M everywhere.
        assert_eq!(rank_histogram(&ens, &[9.0, 9.0], 1), vec![0, 0, 0, 2]);
        // Interior rank.
        assert_eq!(rank_histogram(&ens, &[1.5, 2.5], 1), vec![0, 1, 1, 0]);
        // Stride subsamples.
        assert_eq!(rank_histogram(&ens, &[1.5, 2.5], 2).iter().sum::<u64>(), 1);
    }

    #[test]
    fn rank_histogram_survives_nan_members() {
        let ens = Ensemble::from_members(&[vec![f64::NAN], vec![1.0]]);
        let hist = rank_histogram(&ens, &[2.0], 1);
        assert_eq!(hist.iter().sum::<u64>(), 1, "every sampled component lands in a bin");
    }

    #[test]
    fn stride_targets_256_samples() {
        assert_eq!(rank_histogram_stride(100), 1);
        assert_eq!(rank_histogram_stride(512), 2);
        assert_eq!(rank_histogram_stride(8192), 32);
    }

    #[test]
    fn spread_skill_is_total_and_finite() {
        assert_eq!(spread_skill(0.5, 1.0), 0.5);
        assert_eq!(spread_skill(0.5, 0.0), 0.0);
        assert_eq!(spread_skill(0.5, -1.0), 0.0);
        assert_eq!(spread_skill(f64::NAN, 1.0), 0.0);
        assert_eq!(spread_skill(0.3, f64::NAN), 0.0);
    }
}
