//! Seeded RNG plumbing.
//!
//! Every stochastic component in the framework (initial ensembles, model
//! error, observation noise, diffusion sampling) draws from an explicitly
//! seeded stream, so whole OSSE experiments are bit-reproducible. Ensembles
//! additionally need *independent* per-member streams that remain stable when
//! the member loop is parallelized — [`split_seed`] derives those.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from `(seed, stream)` with good avalanche behaviour
/// (splitmix64 finalizer). Distinct `(seed, stream)` pairs give decorrelated
/// streams; the mapping is pure, so rayon-parallel member loops can derive
/// their own RNGs without any shared mutable state.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG for ensemble member `m` of an experiment seeded with `seed`.
pub fn member_rng(seed: u64, member: usize) -> StdRng {
    seeded(split_seed(seed, member as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let same = (0..16).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_seed_is_pure_and_spreads() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        let children: std::collections::HashSet<u64> =
            (0..1000).map(|m| split_seed(99, m)).collect();
        assert_eq!(children.len(), 1000, "child seeds must not collide");
    }

    #[test]
    fn member_streams_are_decorrelated() {
        let mut a = member_rng(5, 0);
        let mut b = member_rng(5, 1);
        let xs: Vec<f64> = (0..1000).map(|_| a.random::<f64>() - 0.5).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.random::<f64>() - 0.5).collect();
        let corr: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum::<f64>()
            / (xs.iter().map(|x| x * x).sum::<f64>().sqrt()
                * ys.iter().map(|y| y * y).sum::<f64>().sqrt());
        assert!(corr.abs() < 0.1, "member streams correlated: {corr}");
    }
}
