//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use stats::{metrics, Ensemble, OnlineMoments};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RMSE is a metric-like quantity: nonnegative, zero iff equal,
    /// symmetric, and bounded by max error.
    #[test]
    fn rmse_properties(
        a in prop::collection::vec(-100.0f64..100.0, 1..64),
        noise in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let b: Vec<f64> = a.iter().zip(&noise).map(|(x, n)| x + n).collect();
        let r = metrics::rmse(&a, &b);
        prop_assert!(r >= 0.0);
        prop_assert_eq!(metrics::rmse(&a, &a), 0.0);
        prop_assert!((metrics::rmse(&b, &a) - r).abs() < 1e-12);
        let max_err = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        prop_assert!(r <= max_err + 1e-12);
        // rmse >= |bias|
        prop_assert!(r + 1e-12 >= metrics::bias(&a, &b).abs());
        // mae <= rmse (Jensen)
        prop_assert!(metrics::mae(&a, &b) <= r + 1e-12);
    }

    /// Pattern correlation is in [-1, 1] and invariant under affine maps
    /// with positive slope.
    #[test]
    fn correlation_affine_invariant(
        a in prop::collection::vec(-10.0f64..10.0, 3..32),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, x)| x + (i as f64 * 0.7).sin()).collect();
        let c = metrics::pattern_correlation(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        let a2: Vec<f64> = a.iter().map(|x| scale * x + shift).collect();
        let c2 = metrics::pattern_correlation(&a2, &b);
        prop_assert!((c - c2).abs() < 1e-8, "{c} vs {c2}");
    }

    /// CRPS reduces to MAE for a single-member ensemble.
    #[test]
    fn crps_single_member_is_mae(x in -50.0f64..50.0, truth in -50.0f64..50.0) {
        let crps = metrics::crps_scalar(&[x], truth);
        prop_assert!((crps - (x - truth).abs()).abs() < 1e-12);
    }

    /// Ensemble statistics: inflation scales spread exactly; recentring
    /// moves the mean exactly and keeps the spread.
    #[test]
    fn ensemble_operations(
        data in prop::collection::vec(-10.0f64..10.0, 4 * 6),
        factor in 0.1f64..3.0,
        target in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        let members: Vec<Vec<f64>> = data.chunks(6).map(|c| c.to_vec()).collect();
        let mut e = Ensemble::from_members(&members);
        let sp = e.spread();
        e.inflate(factor);
        prop_assert!((e.spread() - factor * sp).abs() < 1e-9 * (1.0 + sp));
        e.recenter(&target);
        for (m, t) in e.mean().iter().zip(&target) {
            prop_assert!((m - t).abs() < 1e-9);
        }
        prop_assert!((e.spread() - factor * sp).abs() < 1e-9 * (1.0 + sp));
    }

    /// Anomalies have zero mean and the same variance as the ensemble.
    #[test]
    fn anomalies_properties(data in prop::collection::vec(-10.0f64..10.0, 3 * 8)) {
        let members: Vec<Vec<f64>> = data.chunks(8).map(|c| c.to_vec()).collect();
        let e = Ensemble::from_members(&members);
        let a = e.anomalies();
        for m in a.mean() {
            prop_assert!(m.abs() < 1e-9);
        }
        for (va, ve) in a.variance().iter().zip(e.variance()) {
            prop_assert!((va - ve).abs() < 1e-9 * (1.0 + ve));
        }
    }

    /// Welford merging is order-independent.
    #[test]
    fn moments_merge_associative(
        xs in prop::collection::vec(-100.0f64..100.0, 1..32),
        ys in prop::collection::vec(-100.0f64..100.0, 1..32),
        zs in prop::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        let acc = |v: &[f64]| {
            let mut m = OnlineMoments::new();
            m.extend(v.iter().copied());
            m
        };
        // (x + y) + z
        let mut a = acc(&xs);
        a.merge(&acc(&ys));
        a.merge(&acc(&zs));
        // x + (y + z)
        let mut b = acc(&ys);
        b.merge(&acc(&zs));
        let mut c = acc(&xs);
        c.merge(&b);
        prop_assert!((a.mean() - c.mean()).abs() < 1e-9 * (1.0 + a.mean().abs()));
        prop_assert!((a.variance() - c.variance()).abs() < 1e-7 * (1.0 + a.variance()));
        prop_assert_eq!(a.count(), c.count());
    }

    /// Seed splitting is collision-free over contiguous ranges.
    #[test]
    fn split_seed_injective_on_range(seed in any::<u64>(), base in 0u64..1_000_000) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            prop_assert!(seen.insert(stats::rng::split_seed(seed, base + i)));
        }
    }
}
