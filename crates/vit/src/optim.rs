//! Optimizers.
//!
//! Adam is the paper's training optimizer (its 2× optimizer-state memory is
//! exactly what the FSDP/ZeRO sharding strategies of Table I partition).
//! Optimizer state is keyed by the model's deterministic parameter visit
//! order.

use crate::layers::Param;

/// A closure that walks every model parameter in a stable order, handing
/// each one to the provided callback (see [`crate::SqgVit::visit_params`]).
pub type ParamVisitor<'a> = dyn FnMut(&mut dyn FnMut(&mut Param)) + 'a;

/// Adam with bias correction (Kingma & Ba); with `weight_decay > 0` this is
/// AdamW (decoupled decay, Loshchilov & Hutter) — the standard recipe for
/// ViT training at the paper's scale.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// Decoupled weight decay (AdamW); 0 disables.
    pub weight_decay: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// New optimizer with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: None,
            weight_decay: 0.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: Adam with decoupled weight decay.
    pub fn adamw(lr: f32, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0);
        let mut a = Self::new(lr);
        a.weight_decay = weight_decay;
        a
    }

    /// Number of update steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update to all parameters produced by `visit` (a closure
    /// that calls its argument once per parameter, in a stable order).
    ///
    /// The first call sizes the moment buffers; later calls must present the
    /// same parameter shapes in the same order.
    pub fn step(&mut self, visit: &mut ParamVisitor<'_>) {
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);

        // Optional global grad clipping: first pass to compute the norm.
        let scale = if let Some(clip) = self.grad_clip {
            let mut sq = 0.0f64;
            visit(&mut |p: &mut Param| {
                sq += p.grad.iter().map(|g| (*g as f64) * (*g as f64)).sum::<f64>();
            });
            let norm = sq.sqrt() as f32;
            if norm > clip {
                clip / norm
            } else {
                1.0
            }
        } else {
            1.0
        };

        let mut idx = 0usize;
        let first_call = self.m.is_empty();
        // Work around the borrow: temporarily move the buffers out.
        let mut m = std::mem::take(&mut self.m);
        let mut v = std::mem::take(&mut self.v);
        let (lr, b1, b2, eps, wd) =
            (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        visit(&mut |p: &mut Param| {
            if first_call {
                m.push(vec![0.0; p.value.len()]);
                v.push(vec![0.0; p.value.len()]);
            }
            let mi = &mut m[idx];
            let vi = &mut v[idx];
            assert_eq!(mi.len(), p.value.len(), "parameter shape changed between steps");
            for ((w, g), (ms, vs)) in p
                .value
                .iter_mut()
                .zip(&p.grad)
                .zip(mi.iter_mut().zip(vi.iter_mut()))
            {
                let g = *g * scale;
                *ms = b1 * *ms + (1.0 - b1) * g;
                *vs = b2 * *vs + (1.0 - b2) * g * g;
                let mhat = *ms / bc1;
                let vhat = *vs / bc2;
                // Decoupled decay first (AdamW), then the Adam update.
                if wd > 0.0 {
                    *w -= lr * wd * *w;
                }
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
        self.m = m;
        self.v = v;
    }
}

/// Plain SGD (baseline / tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// One update.
    pub fn step(&mut self, visit: &mut ParamVisitor<'_>) {
        let lr = self.lr;
        visit(&mut |p: &mut Param| {
            for (w, g) in p.value.iter_mut().zip(&p.grad) {
                *w -= lr * g;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = 0.5 (w - 3)²: both optimizers must converge.
    fn quadratic_test(run: &mut dyn FnMut(&mut Param)) -> f32 {
        let mut p = Param::new(vec![0.0]);
        for _ in 0..2000 {
            p.grad[0] = p.value[0] - 3.0;
            run(&mut p);
        }
        p.value[0]
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = quadratic_test(&mut |p| {
            opt.step(&mut |f| f(p));
        });
        assert!((w - 3.0).abs() < 0.01, "Adam converged to {w}");
        assert_eq!(opt.steps(), 2000);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_test(&mut |p| {
            opt.step(&mut |f| f(p));
        });
        assert!((w - 3.0).abs() < 0.01, "SGD converged to {w}");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with gradient g, Adam moves by ~lr (sign of g),
        // regardless of g's magnitude, thanks to bias correction.
        for g in [0.001f32, 1.0, 1000.0] {
            let mut p = Param::new(vec![0.0]);
            p.grad[0] = g;
            let mut opt = Adam::new(0.1);
            opt.step(&mut |f| f(&mut p));
            assert!(
                (p.value[0] + 0.1).abs() < 1e-3,
                "first Adam step should be ≈ -lr, got {} for g={g}",
                p.value[0]
            );
        }
    }

    #[test]
    fn grad_clip_limits_update() {
        let mut clipped = Adam::new(0.1);
        clipped.grad_clip = Some(1.0);
        let mut p1 = Param::new(vec![0.0]);
        p1.grad[0] = 1000.0;
        clipped.step(&mut |f| f(&mut p1));

        let mut unclipped = Adam::new(0.1);
        let mut p2 = Param::new(vec![0.0]);
        p2.grad[0] = 1000.0;
        unclipped.step(&mut |f| f(&mut p2));

        // Adam normalizes by RMS so the *final* update sizes coincide here,
        // but the clipped moments must be bounded.
        assert!(clipped.m[0][0].abs() <= 0.1 + 1e-6, "clipped first moment {}", clipped.m[0][0]);
        assert!(unclipped.m[0][0].abs() > 10.0);
    }

    #[test]
    fn adamw_decays_weights_toward_zero() {
        // With zero gradient, AdamW shrinks weights geometrically while
        // plain Adam leaves them untouched.
        let mut adamw = Adam::adamw(0.1, 0.1);
        let mut p = Param::new(vec![1.0]);
        for _ in 0..10 {
            p.grad[0] = 0.0;
            adamw.step(&mut |f| f(&mut p));
        }
        assert!((p.value[0] - 0.99f32.powi(10)).abs() < 1e-4, "got {}", p.value[0]);

        let mut adam = Adam::new(0.1);
        let mut q = Param::new(vec![1.0]);
        q.grad[0] = 0.0;
        adam.step(&mut |f| f(&mut q));
        assert_eq!(q.value[0], 1.0);
    }

    #[test]
    fn adamw_still_converges_on_quadratic() {
        let mut opt = Adam::adamw(0.05, 0.001);
        let w = quadratic_test(&mut |p| {
            opt.step(&mut |f| f(p));
        });
        // Weight decay biases the optimum slightly toward zero.
        assert!((w - 3.0).abs() < 0.1, "AdamW converged to {w}");
    }

    #[test]
    #[should_panic]
    fn shape_change_detected() {
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(vec![0.0; 3]);
        opt.step(&mut |f| f(&mut p));
        let mut q = Param::new(vec![0.0; 5]);
        opt.step(&mut |f| f(&mut q));
    }
}
