//! # vit — the SQG-ViT surrogate model
//!
//! A from-scratch vision transformer (Fig. 2 of the paper) that emulates the
//! SQG forecast model: patch embedding, multi-head self-attention, MLP with
//! GELU, pre/post normalization, Dropout and DropPath regularization —
//! all with **manual backprop** (finite-difference-checked) and Adam
//! training in `f32`, mirroring the mixed-precision GPU arithmetic the paper
//! profiles.
//!
//! The three architectures of Table II are provided by
//! [`VitConfig::table2`] (157M / 1.2B / 2.5B parameters — these are sized
//! analytically and fed to the `hpc` performance simulator; the OSSE
//! experiments train [`VitConfig::small`] networks for real).
//!
//! Eq. 18's FLOP budget (`T = 6 · tokens · E · M`) lives in [`flops`].
//!
//! ```
//! use vit::{SqgVit, VitConfig};
//! let mut model = SqgVit::new(VitConfig::small(16), 42);
//! let state = vec![0.0f32; 2 * 16 * 16];
//! let forecast = model.predict(&state);
//! assert_eq!(forecast.len(), state.len());
//! ```

#![warn(missing_docs)]
// Numeric kernels here read/write several arrays at matched indices;
// explicit index loops are the clearer idiom (backprop kernels index multiple parallel arrays).
#![allow(clippy::needless_range_loop)]

mod config;
pub mod flops;
pub mod layers;
mod model;
pub mod optim;
mod schedule;
mod serialize;
mod tensor;
pub mod train;

pub use config::VitConfig;
pub use schedule::LrSchedule;
pub use model::SqgVit;
pub use serialize::{load_weights, save_weights, LoadError};
pub use tensor::Tensor;
