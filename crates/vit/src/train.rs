//! Training loop: offline pre-training on model trajectories and the
//! *online* fine-tuning with observations that Fig. 1's workflow performs
//! each assimilation cycle.

use crate::model::SqgVit;
use crate::optim::Adam;
use crate::schedule::LrSchedule;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use stats::rng::seeded;

/// A supervised pair: input state and the state one observation interval
/// later (both flattened images).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Input image (flattened, channel-major).
    pub x: Vec<f32>,
    /// Target image (same layout).
    pub y: Vec<f32>,
}

/// Mean-squared-error loss and its gradient.
pub fn mse_loss(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len());
    let n = pred.len() as f32;
    let mut grad = vec![0.0f32; pred.len()];
    let mut loss = 0.0f32;
    for ((g, p), t) in grad.iter_mut().zip(pred).zip(target) {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Trainer: owns the optimizer, the LR schedule and the shuffling/dropout
/// RNG.
pub struct Trainer {
    /// Adam/AdamW optimizer.
    pub optimizer: Adam,
    /// Learning-rate schedule (evaluated at each optimizer step).
    pub schedule: LrSchedule,
    /// Mini-batch size.
    pub batch_size: usize,
    rng: StdRng,
}

impl Trainer {
    /// New trainer with a constant learning rate.
    pub fn new(lr: f32, batch_size: usize, seed: u64) -> Self {
        Self::with_schedule(LrSchedule::Constant { lr }, batch_size, seed)
    }

    /// New trainer with an explicit LR schedule.
    ///
    /// # Panics
    /// Panics on an invalid schedule or zero batch size.
    pub fn with_schedule(schedule: LrSchedule, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size >= 1);
        schedule.validate().expect("invalid LR schedule");
        let mut optimizer = Adam::new(schedule.at(0));
        optimizer.grad_clip = Some(1.0);
        Trainer { optimizer, schedule, batch_size, rng: seeded(seed) }
    }

    /// One gradient step on a batch; returns the batch loss.
    pub fn step(&mut self, model: &mut SqgVit, batch: &[Sample]) -> f32 {
        assert!(!batch.is_empty());
        telemetry::counter_add("vit.train.steps", 1);
        self.optimizer.lr = self.schedule.at(self.optimizer.steps());
        model.zero_grad();
        let xs: Vec<Vec<f32>> = batch.iter().map(|s| s.x.clone()).collect();
        let preds = model.forward(&xs, true, &mut self.rng);
        let mut total = 0.0f32;
        let mut grads = Vec::with_capacity(batch.len());
        for (pred, sample) in preds.iter().zip(batch) {
            let (loss, mut grad) = mse_loss(pred, &sample.y);
            total += loss;
            // Average over the batch.
            for g in &mut grad {
                *g /= batch.len() as f32;
            }
            grads.push(grad);
        }
        model.backward(&grads);
        self.optimizer.step(&mut |f| model.visit_params(f));
        total / batch.len() as f32
    }

    /// One epoch over `data` (shuffled); returns the mean loss.
    pub fn epoch(&mut self, model: &mut SqgVit, data: &[Sample]) -> f32 {
        assert!(!data.is_empty());
        let span = telemetry::enabled().then(std::time::Instant::now);
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut self.rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(self.batch_size) {
            let batch: Vec<Sample> = chunk.iter().map(|&i| data[i].clone()).collect();
            total += self.step(model, &batch);
            batches += 1;
        }
        let mean = total / batches as f32;
        if let Some(t0) = span {
            let secs = t0.elapsed().as_secs_f64();
            telemetry::histogram_record("vit.train.epoch_secs", secs);
            telemetry::counter_add("vit.train.samples", data.len() as u64);
            telemetry::gauge_set("vit.train.loss", mean as f64);
            telemetry::gauge_set("vit.train.throughput", data.len() as f64 / secs.max(1e-12));
        }
        mean
    }

    /// Mean loss over `data` without updating (validation).
    pub fn evaluate(&mut self, model: &mut SqgVit, data: &[Sample]) -> f32 {
        assert!(!data.is_empty());
        let mut total = 0.0;
        for s in data {
            let pred = model.predict(&s.x);
            total += mse_loss(&pred, &s.y).0;
        }
        total / data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VitConfig;

    fn tiny_model(seed: u64) -> SqgVit {
        SqgVit::new(
            VitConfig {
                input_size: 8,
                patch_size: 4,
                in_chans: 2,
                depth: 1,
                heads: 2,
                embed_dim: 16,
                mlp_ratio: 2,
                dropout: 0.0,
                drop_path: 0.0,
            },
            seed,
        )
    }

    fn toy_dataset(n: usize) -> Vec<Sample> {
        // Learnable map: y = circular shift of x by one column (a crude
        // "advection" stand-in).
        (0..n)
            .map(|k| {
                let x: Vec<f32> =
                    (0..128).map(|i| ((i + k) as f32 * 0.7).sin() * 0.5).collect();
                let mut y = vec![0.0f32; 128];
                for ch in 0..2 {
                    for r in 0..8 {
                        for c in 0..8 {
                            y[ch * 64 + r * 8 + (c + 1) % 8] = x[ch * 64 + r * 8 + c];
                        }
                    }
                }
                Sample { x, y }
            })
            .collect()
    }

    #[test]
    fn mse_loss_and_grad() {
        let (l, g) = mse_loss(&[1.0, 2.0], &[0.0, 2.0]);
        assert!((l - 0.5).abs() < 1e-6);
        assert!((g[0] - 1.0).abs() < 1e-6);
        assert_eq!(g[1], 0.0);
        let (l0, _) = mse_loss(&[3.0], &[3.0]);
        assert_eq!(l0, 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = tiny_model(1);
        let data = toy_dataset(16);
        let mut trainer = Trainer::new(3e-3, 8, 7);
        let before = trainer.evaluate(&mut model, &data);
        for _ in 0..30 {
            trainer.epoch(&mut model, &data);
        }
        let after = trainer.evaluate(&mut model, &data);
        assert!(
            after < 0.5 * before,
            "training failed to reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn step_returns_finite_loss() {
        let mut model = tiny_model(2);
        let data = toy_dataset(4);
        let mut trainer = Trainer::new(1e-3, 4, 3);
        let l = trainer.step(&mut model, &data);
        assert!(l.is_finite() && l > 0.0);
    }

    #[test]
    fn epoch_is_deterministic_given_seed() {
        let data = toy_dataset(8);
        let run = || {
            let mut model = tiny_model(5);
            let mut trainer = Trainer::new(1e-3, 4, 11);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(trainer.epoch(&mut model, &data));
            }
            losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warmup_cosine_schedule_drives_optimizer_lr() {
        let mut model = tiny_model(9);
        let data = toy_dataset(4);
        let mut trainer = Trainer::with_schedule(
            LrSchedule::WarmupCosine {
                peak: 0.01,
                floor: 0.001,
                warmup_steps: 2,
                total_steps: 10,
            },
            4,
            3,
        );
        trainer.step(&mut model, &data);
        // After the first step the LR applied was the warmup value.
        assert!((trainer.optimizer.lr - 0.005).abs() < 1e-6);
        for _ in 0..12 {
            trainer.step(&mut model, &data);
        }
        // Past total_steps the LR sits at the floor.
        assert!((trainer.optimizer.lr - 0.001).abs() < 1e-6);
    }

    #[test]
    fn online_finetuning_adapts_to_new_regime() {
        // Pre-train on the shift map, then fine-tune on the identity map:
        // a proxy for the paper's online adaptation to observations.
        let mut model = tiny_model(6);
        let shift = toy_dataset(16);
        let mut trainer = Trainer::new(3e-3, 8, 13);
        for _ in 0..20 {
            trainer.epoch(&mut model, &shift);
        }
        let identity: Vec<Sample> =
            shift.iter().map(|s| Sample { x: s.x.clone(), y: s.x.clone() }).collect();
        let before = trainer.evaluate(&mut model, &identity);
        for _ in 0..20 {
            trainer.epoch(&mut model, &identity);
        }
        let after = trainer.evaluate(&mut model, &identity);
        assert!(after < 0.5 * before, "fine-tuning failed: {before} -> {after}");
    }
}
