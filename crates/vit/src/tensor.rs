//! Minimal 2-D `f32` tensor for the ViT surrogate.
//!
//! All activations in the network are `[rows, cols]` matrices with the
//! batch/token structure tracked by the layers (a `[B, T, D]` activation is
//! stored as `rows = B·T`, `cols = D`). f32 mirrors the mixed-precision
//! arithmetic of the GPU training the paper profiles.

use rayon::prelude::*;

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major buffer, `rows * cols` long.
    pub data: Vec<f32>,
}

/// Parallelize GEMMs above this many multiply-adds.
const PAR_FLOPS: usize = 32 * 32 * 32;

impl Tensor {
    /// Zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (`[m,k]·[k,n] → [m,n]`), rayon-parallel over rows.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        let kernel = |i: usize, row_out: &mut [f32]| {
            let a_row = self.row(i);
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in row_out.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };
        if m * k * n >= PAR_FLOPS {
            out.data.par_chunks_mut(n).enumerate().for_each(|(i, r)| kernel(i, r));
        } else {
            for (i, r) in out.data.chunks_mut(n).enumerate() {
                kernel(i, r);
            }
        }
        out
    }

    /// `self · otherᵀ` (`[m,k]·[n,k]ᵀ → [m,n]`) without materializing the
    /// transpose — the backward passes use this constantly.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_bt inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        let kernel = |i: usize, row_out: &mut [f32]| {
            let a_row = self.row(i);
            for (j, o) in row_out.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        };
        if m * k * n >= PAR_FLOPS {
            out.data.par_chunks_mut(n).enumerate().for_each(|(i, r)| kernel(i, r));
        } else {
            for (i, r) in out.data.chunks_mut(n).enumerate() {
                kernel(i, r);
            }
        }
        out
    }

    /// `selfᵀ · other` (`[k,m]ᵀ·[k,n] → [m,n]`): the weight-gradient shape.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_at row mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero coefficient skip is a bitwise no-op")
                    continue;
                }
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Elementwise addition in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.data.len(), other.data.len(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, seed: f32) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i as f32) * seed).sin()).collect(),
        )
    }

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                let mut acc = 0.0;
                for p in 0..a.cols {
                    acc += a.data[i * a.cols + p] * b.data[p * b.cols + j];
                }
                out.data[i * b.cols + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = t(7, 5, 0.3);
        let b = t(5, 9, 0.7);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_parallel_path() {
        let a = t(64, 64, 0.11);
        let b = t(64, 64, 0.13);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = t(4, 6, 0.2);
        let b = t(5, 6, 0.9);
        let got = a.matmul_bt(&b);
        let want = a.matmul(&b.transpose());
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = t(6, 4, 0.4);
        let b = t(6, 3, 0.8);
        let got = a.matmul_at(&b);
        let want = a.transpose().matmul(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(3, 8, 0.5);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.data, vec![1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.data, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn finite_check_and_norm() {
        let mut a = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!(a.is_finite());
        a.data[0] = f32::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
