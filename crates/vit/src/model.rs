//! The SQG-ViT surrogate model.
//!
//! Images are `[channels, n, n]` fields flattened channel-major (exactly the
//! DA state-vector layout: level-0 grid then level-1 grid). The model
//! patchifies, embeds, adds a learned positional embedding, runs the
//! transformer blocks of Fig. 2, and de-patchifies back to an image — i.e.
//! it learns the 12 h flow map of the SQG system.

use crate::config::VitConfig;
use crate::layers::{Block, ForwardCtx, Layer, LayerNorm, Linear, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use stats::rng::seeded;

/// The ViT surrogate.
pub struct SqgVit {
    config: VitConfig,
    embed: Linear,
    pos: Param,
    blocks: Vec<Block>,
    norm: LayerNorm,
    head: Linear,
    cache_batch: usize,
}

impl SqgVit {
    /// Builds a model with Gaussian(0, 0.02) initialization from `seed`.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(config: VitConfig, seed: u64) -> Self {
        config.validate().expect("invalid ViT configuration");
        let mut rng: StdRng = seeded(seed);
        let tokens = config.tokens();
        let d = config.embed_dim;
        let pd = config.patch_dim();
        let blocks = (0..config.depth)
            .map(|_| {
                Block::new(
                    d,
                    config.heads,
                    config.mlp_ratio,
                    tokens,
                    config.dropout,
                    config.drop_path,
                    &mut rng,
                )
            })
            .collect();
        SqgVit {
            embed: Linear::new(pd, d, &mut rng),
            pos: Param::new(crate::layers::gauss_init(&mut rng, tokens * d, 0.02)),
            blocks,
            norm: LayerNorm::new(d),
            head: Linear::new(d, pd, &mut rng),
            config,
            cache_batch: 0,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &VitConfig {
        &self.config
    }

    /// Total learnable parameters (must agree with
    /// [`VitConfig::param_count`]).
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Splits a batch of flattened images into patch tokens
    /// `[batch * tokens, patch_dim]`.
    fn patchify(&self, images: &[Vec<f32>]) -> Tensor {
        let c = self.config.in_chans;
        let n = self.config.input_size;
        let p = self.config.patch_size;
        let per_side = n / p;
        let tokens = self.config.tokens();
        let pd = self.config.patch_dim();
        let mut out = Tensor::zeros(images.len() * tokens, pd);
        for (b, img) in images.iter().enumerate() {
            assert_eq!(img.len(), c * n * n, "image length mismatch");
            for ty in 0..per_side {
                for tx in 0..per_side {
                    let tok = ty * per_side + tx;
                    let dst = out.row_mut(b * tokens + tok);
                    let mut w = 0;
                    for ch in 0..c {
                        for py in 0..p {
                            for px in 0..p {
                                let gy = ty * p + py;
                                let gx = tx * p + px;
                                dst[w] = img[ch * n * n + gy * n + gx];
                                w += 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`SqgVit::patchify`].
    fn unpatchify(&self, tokens_t: &Tensor, batch: usize) -> Vec<Vec<f32>> {
        let c = self.config.in_chans;
        let n = self.config.input_size;
        let p = self.config.patch_size;
        let per_side = n / p;
        let tokens = self.config.tokens();
        let mut out = vec![vec![0.0f32; c * n * n]; batch];
        for (b, img) in out.iter_mut().enumerate() {
            for ty in 0..per_side {
                for tx in 0..per_side {
                    let tok = ty * per_side + tx;
                    let src = tokens_t.row(b * tokens + tok);
                    let mut w = 0;
                    for ch in 0..c {
                        for py in 0..p {
                            for px in 0..p {
                                let gy = ty * p + py;
                                let gx = tx * p + px;
                                img[ch * n * n + gy * n + gx] = src[w];
                                w += 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Forward pass on a batch of flattened images; returns predictions of
    /// the same shape. `rng` drives dropout when `train` is true.
    pub fn forward(&mut self, images: &[Vec<f32>], train: bool, rng: &mut StdRng) -> Vec<Vec<f32>> {
        let batch = images.len();
        assert!(batch > 0, "empty batch");
        self.cache_batch = batch;
        let tokens = self.config.tokens();
        let d = self.config.embed_dim;
        let mut ctx = ForwardCtx { train, rng };

        let patches = self.patchify(images);
        let mut h = self.embed.forward(&patches, &mut ctx);
        // Add positional embedding (broadcast over the batch).
        for b in 0..batch {
            for tok in 0..tokens {
                let row = h.row_mut(b * tokens + tok);
                for (v, p) in row.iter_mut().zip(&self.pos.value[tok * d..(tok + 1) * d]) {
                    *v += p;
                }
            }
        }
        for blk in &mut self.blocks {
            h = blk.forward(&h, &mut ctx);
        }
        let h = self.norm.forward(&h, &mut ctx);
        let y = self.head.forward(&h, &mut ctx);
        self.unpatchify(&y, batch)
    }

    /// Backward pass from per-image output gradients (`dL/dŷ`, same shape
    /// as the forward output). Accumulates parameter gradients and returns
    /// the mean gradient norm (diagnostic).
    pub fn backward(&mut self, grad_images: &[Vec<f32>]) -> f32 {
        let batch = grad_images.len();
        assert_eq!(batch, self.cache_batch, "backward batch mismatch");
        let tokens = self.config.tokens();
        let d = self.config.embed_dim;

        let gtok = self.patchify(grad_images); // same gather as the input path
        let g = self.head.backward(&gtok);
        let g = self.norm.backward(&g);
        let mut g = g;
        for blk in self.blocks.iter_mut().rev() {
            g = blk.backward(&g);
        }
        // Positional-embedding gradient: sum over the batch.
        for b in 0..batch {
            for tok in 0..tokens {
                let row = g.row(b * tokens + tok);
                for (pg, v) in self.pos.grad[tok * d..(tok + 1) * d].iter_mut().zip(row) {
                    *pg += v;
                }
            }
        }
        let g_in = self.embed.backward(&g);
        g_in.norm() / (g_in.len() as f32).sqrt()
    }

    /// Visits every parameter in a stable order (embed, pos, blocks, norm,
    /// head).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params(f);
        f(&mut self.pos);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.norm.visit_params(f);
        self.head.visit_params(f);
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Convenience inference on one image.
    pub fn predict(&mut self, image: &[f32]) -> Vec<f32> {
        let mut rng = seeded(0);
        // INVARIANT: forward returns one output per input image.
        self.forward(&[image.to_vec()], false, &mut rng).pop().unwrap()
    }

    /// f64 bridge for the DA framework: forecast a state vector.
    pub fn predict_f64(&mut self, state: &[f64]) -> Vec<f64> {
        let img: Vec<f32> = state.iter().map(|&v| v as f32).collect();
        self.predict(&img).into_iter().map(|v| v as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> VitConfig {
        VitConfig {
            input_size: 8,
            patch_size: 4,
            in_chans: 2,
            depth: 2,
            heads: 2,
            embed_dim: 16,
            mlp_ratio: 2,
            dropout: 0.0,
            drop_path: 0.0,
        }
    }

    fn test_image(seed: f32, len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * seed).sin()).collect()
    }

    #[test]
    fn patchify_round_trip() {
        let m = SqgVit::new(tiny_config(), 1);
        let img = test_image(0.31, 2 * 64);
        let t = m.patchify(std::slice::from_ref(&img));
        assert_eq!(t.rows, 4); // (8/4)^2 tokens
        assert_eq!(t.cols, 32); // 4*4*2
        let back = m.unpatchify(&t, 1);
        assert_eq!(back[0], img);
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut m = SqgVit::new(tiny_config(), 2);
        let img = test_image(0.17, 128);
        let y1 = m.predict(&img);
        let y2 = m.predict(&img);
        assert_eq!(y1.len(), 128);
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn param_count_matches_config() {
        let cfg = tiny_config();
        let want = cfg.param_count() as usize;
        let mut m = SqgVit::new(cfg, 3);
        assert_eq!(m.num_params(), want);
    }

    #[test]
    fn different_seeds_different_models() {
        let mut a = SqgVit::new(tiny_config(), 1);
        let mut b = SqgVit::new(tiny_config(), 2);
        let img = test_image(0.23, 128);
        assert_ne!(a.predict(&img), b.predict(&img));
    }

    #[test]
    fn end_to_end_gradcheck() {
        // Full-model finite-difference check on a few parameters, with
        // L = 0.5 || f(x) - y ||².
        let mut m = SqgVit::new(tiny_config(), 4);
        let x = test_image(0.29, 128);
        let target = test_image(0.41, 128);
        let mut rng = seeded(0);

        let loss_of = |m: &mut SqgVit, x: &[f32], tgt: &[f32]| -> f32 {
            let mut r = seeded(0);
            let y = m.forward(&[x.to_vec()], false, &mut r).pop().unwrap();
            0.5 * y.iter().zip(tgt).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };

        // Analytic grads.
        m.zero_grad();
        let y = m.forward(std::slice::from_ref(&x), false, &mut rng).pop().unwrap();
        let dy: Vec<f32> = y.iter().zip(&target).map(|(a, b)| a - b).collect();
        let _ = m.backward(&[dy]);

        // Collect (flat copies of) grads in visit order.
        let mut grads: Vec<Vec<f32>> = Vec::new();
        m.visit_params(&mut |p| grads.push(p.grad.clone()));

        // Spot-check a handful of parameters from different tensors.
        let h = 1e-2f32;
        let mut pidx = 0usize;
        let mut checked = 0usize;
        let n_params = grads.len();
        for target_param in 0..n_params {
            if target_param % 3 != 0 {
                pidx += 1;
                continue;
            }
            // Perturb element 0 of this parameter.
            let mut k = 0usize;
            m.visit_params(&mut |p| {
                if k == target_param {
                    p.value[0] += h;
                }
                k += 1;
            });
            let lp = loss_of(&mut m, &x, &target);
            k = 0;
            m.visit_params(&mut |p| {
                if k == target_param {
                    p.value[0] -= 2.0 * h;
                }
                k += 1;
            });
            let lm = loss_of(&mut m, &x, &target);
            k = 0;
            m.visit_params(&mut |p| {
                if k == target_param {
                    p.value[0] += h;
                }
                k += 1;
            });
            let fd = (lp - lm) / (2.0 * h);
            let an = grads[target_param][0];
            assert!(
                (an - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "param {target_param}: analytic {an} vs fd {fd}"
            );
            checked += 1;
            pidx += 1;
        }
        let _ = pidx;
        assert!(checked >= 5, "gradcheck must cover several parameter tensors");
    }

    #[test]
    fn f64_bridge_round_trips_shape() {
        let mut m = SqgVit::new(tiny_config(), 5);
        let state: Vec<f64> = (0..128).map(|i| (i as f64 * 0.01).cos()).collect();
        let out = m.predict_f64(&state);
        assert_eq!(out.len(), 128);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn wrong_image_length_panics() {
        let mut m = SqgVit::new(tiny_config(), 6);
        let _ = m.predict(&[0.0; 10]);
    }
}
