//! Network layers with manual forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward` and
//! accumulates parameter gradients in [`Param::grad`] during `backward`.
//! The trainer visits parameters in a deterministic order via
//! [`Layer::visit_params`], which is what keys the Adam state.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// A learnable parameter: value and accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Vec<f32>,
    /// Accumulated gradient (same length).
    pub grad: Vec<f32>,
}

impl Param {
    /// Creates a parameter with zeroed gradient.
    pub fn new(value: Vec<f32>) -> Self {
        let grad = vec![0.0; value.len()];
        Param { value, grad }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// Per-forward-pass context: training mode and the dropout RNG.
pub struct ForwardCtx<'a> {
    /// Training (true) vs inference (false): controls dropout/droppath.
    pub train: bool,
    /// RNG for stochastic regularization.
    pub rng: &'a mut StdRng,
}

/// Common layer interface.
pub trait Layer {
    /// Forward pass; caches activations needed by backward.
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor;
    /// Backward pass: takes `dL/dy`, accumulates parameter grads, returns
    /// `dL/dx`. Must be called after a matching `forward`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;
    /// Visits all parameters in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));
}

/// Gaussian init with std `s` (the ViT convention, s = 0.02).
pub fn gauss_init(rng: &mut StdRng, len: usize, s: f32) -> Vec<f32> {
    (0..len).map(|_| s * stats::gaussian::standard_normal(rng) as f32).collect()
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer `y = x Wᵀ + b`, `W: [out, in]`.
pub struct Linear {
    /// Weight matrix, `[out * in]` row-major with `out` rows.
    pub w: Param,
    /// Bias, length `out`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// New layer with Gaussian(0, 0.02) weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            w: Param::new(gauss_init(rng, out_dim * in_dim, 0.02)),
            b: Param::new(vec![0.0; out_dim]),
            in_dim,
            out_dim,
            cache_x: None,
        }
    }

    fn w_tensor(&self) -> Tensor {
        Tensor::from_vec(self.out_dim, self.in_dim, self.w.value.clone())
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(x.cols, self.in_dim, "Linear input dim mismatch");
        let mut y = x.matmul_bt(&self.w_tensor());
        for r in 0..y.rows {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.b.value) {
                *v += b;
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        // INVARIANT: the training loop always runs forward before backward.
        let x = self.cache_x.as_ref().expect("Linear::backward before forward");
        assert_eq!(grad.cols, self.out_dim);
        // dW = gradᵀ x ; db = column sums; dx = grad W.
        let dw = grad.matmul_at(x);
        for (g, d) in self.w.grad.iter_mut().zip(&dw.data) {
            *g += d;
        }
        for r in 0..grad.rows {
            for (g, d) in self.b.grad.iter_mut().zip(grad.row(r)) {
                *g += d;
            }
        }
        grad.matmul(&self.w_tensor())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Row-wise layer normalization with learned scale/shift.
pub struct LayerNorm {
    /// Scale γ.
    pub gamma: Param,
    /// Shift β.
    pub beta: Param,
    dim: usize,
    eps: f32,
    cache: Option<(Tensor, Vec<f32>, Vec<f32>)>, // normalized x̂, mean, inv_std
}

impl LayerNorm {
    /// New LayerNorm over `dim` features.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(vec![1.0; dim]),
            beta: Param::new(vec![0.0; dim]),
            dim,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(x.cols, self.dim);
        let mut out = Tensor::zeros(x.rows, x.cols);
        let mut xhat = Tensor::zeros(x.rows, x.cols);
        let mut means = vec![0.0f32; x.rows];
        let mut inv_stds = vec![0.0f32; x.rows];
        for r in 0..x.rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / self.dim as f32;
            let var =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / self.dim as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            means[r] = mean;
            inv_stds[r] = inv;
            for c in 0..self.dim {
                let h = (row[c] - mean) * inv;
                xhat.data[r * self.dim + c] = h;
                out.data[r * self.dim + c] = h * self.gamma.value[c] + self.beta.value[c];
            }
        }
        self.cache = Some((xhat, means, inv_stds));
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        // INVARIANT: the training loop always runs forward before backward.
        let (xhat, _means, inv_stds) =
            // INVARIANT: forward always runs before backward.
            self.cache.as_ref().expect("LayerNorm::backward before forward");
        let n = self.dim as f32;
        let mut dx = Tensor::zeros(grad.rows, grad.cols);
        for r in 0..grad.rows {
            let g = grad.row(r);
            let h = xhat.row(r);
            // Accumulate parameter grads.
            for c in 0..self.dim {
                self.gamma.grad[c] += g[c] * h[c];
                self.beta.grad[c] += g[c];
            }
            // dx = (inv/n) * (n*gy - sum(gy) - x̂ * sum(gy*x̂)) with gy = g*γ.
            let mut sum_gy = 0.0f32;
            let mut sum_gyh = 0.0f32;
            for c in 0..self.dim {
                let gy = g[c] * self.gamma.value[c];
                sum_gy += gy;
                sum_gyh += gy * h[c];
            }
            let inv = inv_stds[r];
            for c in 0..self.dim {
                let gy = g[c] * self.gamma.value[c];
                dx.data[r * self.dim + c] = inv / n * (n * gy - sum_gy - h[c] * sum_gyh);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

// ---------------------------------------------------------------------------
// GELU
// ---------------------------------------------------------------------------

/// GELU activation (tanh approximation), stateless apart from the cache.
pub struct Gelu {
    cache_x: Option<Tensor>,
}

impl Gelu {
    /// New activation layer.
    pub fn new() -> Self {
        Gelu { cache_x: None }
    }

    #[inline]
    fn gelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }

    #[inline]
    fn dgelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6;
        let inner = C * (x + 0.044715 * x * x * x);
        let t = inner.tanh();
        let sech2 = 1.0 - t * t;
        0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
    }
}

impl Default for Gelu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, _ctx: &mut ForwardCtx) -> Tensor {
        let mut y = x.clone();
        for v in &mut y.data {
            *v = Self::gelu(*v);
        }
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        // INVARIANT: the training loop always runs forward before backward.
        let x = self.cache_x.as_ref().expect("Gelu::backward before forward");
        let mut dx = grad.clone();
        for (d, xv) in dx.data.iter_mut().zip(&x.data) {
            *d *= Self::dgelu(*xv);
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

// ---------------------------------------------------------------------------
// Dropout / DropPath
// ---------------------------------------------------------------------------

/// Inverted dropout.
pub struct Dropout {
    p: f32,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// New dropout with drop probability `p`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p));
        Dropout { p: p as f32, mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if !ctx.train || self.p == 0.0 { // lint: allow(float-exact-compare, reason="p = 0 is the exact feature-off sentinel")
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if ctx.rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mut y = x.clone();
        for (v, m) in y.data.iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match &self.mask {
            None => grad.clone(),
            Some(mask) => {
                let mut dx = grad.clone();
                for (v, m) in dx.data.iter_mut().zip(mask) {
                    *v *= m;
                }
                dx
            }
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Stochastic depth: drops the whole residual branch per sample.
///
/// The activation is `[B*T, D]`; the layer needs the token count to group
/// rows into samples.
pub struct DropPath {
    p: f32,
    tokens: usize,
    scales: Option<Vec<f32>>, // one per sample
}

impl DropPath {
    /// New DropPath with drop probability `p` for batches of `tokens` rows
    /// per sample.
    pub fn new(p: f64, tokens: usize) -> Self {
        assert!((0.0..1.0).contains(&p));
        assert!(tokens > 0);
        DropPath { p: p as f32, tokens, scales: None }
    }
}

impl Layer for DropPath {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if !ctx.train || self.p == 0.0 { // lint: allow(float-exact-compare, reason="p = 0 is the exact feature-off sentinel")
            self.scales = None;
            return x.clone();
        }
        assert!(x.rows.is_multiple_of(self.tokens), "rows must be a multiple of tokens");
        let samples = x.rows / self.tokens;
        let keep = 1.0 - self.p;
        let scales: Vec<f32> = (0..samples)
            .map(|_| if ctx.rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mut y = x.clone();
        for (s, &sc) in scales.iter().enumerate() {
            for r in s * self.tokens..(s + 1) * self.tokens {
                for v in y.row_mut(r) {
                    *v *= sc;
                }
            }
        }
        self.scales = Some(scales);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match &self.scales {
            None => grad.clone(),
            Some(scales) => {
                let mut dx = grad.clone();
                for (s, &sc) in scales.iter().enumerate() {
                    for r in s * self.tokens..(s + 1) * self.tokens {
                        for v in dx.row_mut(r) {
                            *v *= sc;
                        }
                    }
                }
                dx
            }
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

// ---------------------------------------------------------------------------
// Multi-head self-attention
// ---------------------------------------------------------------------------

/// Multi-head self-attention over `[B*T, D]` activations.
pub struct MultiHeadAttention {
    qkv: Linear,
    proj: Linear,
    heads: usize,
    dim: usize,
    tokens: usize,
    // Per (sample, head): cached Q, K, V ([T, dh]) and attention A ([T, T]).
    cache: Option<AttnCache>,
}

struct AttnCache {
    q: Vec<Tensor>,
    k: Vec<Tensor>,
    v: Vec<Tensor>,
    a: Vec<Tensor>,
    batch: usize,
}

impl MultiHeadAttention {
    /// New attention layer for `dim` features, `heads` heads and `tokens`
    /// tokens per sample.
    pub fn new(dim: usize, heads: usize, tokens: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % heads, 0, "heads must divide dim");
        MultiHeadAttention {
            qkv: Linear::new(dim, 3 * dim, rng),
            proj: Linear::new(dim, dim, rng),
            heads,
            dim,
            tokens,
            cache: None,
        }
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(x.cols, self.dim);
        assert_eq!(x.rows % self.tokens, 0);
        let batch = x.rows / self.tokens;
        let t = self.tokens;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let qkv = self.qkv.forward(x, ctx); // [B*T, 3D]

        let mut cache =
            AttnCache { q: Vec::new(), k: Vec::new(), v: Vec::new(), a: Vec::new(), batch };
        let mut concat = Tensor::zeros(x.rows, self.dim);

        for b in 0..batch {
            for h in 0..self.heads {
                // Gather Q, K, V for (b, h).
                let mut q = Tensor::zeros(t, dh);
                let mut k = Tensor::zeros(t, dh);
                let mut v = Tensor::zeros(t, dh);
                for ti in 0..t {
                    let row = qkv.row(b * t + ti);
                    let off = h * dh;
                    q.row_mut(ti).copy_from_slice(&row[off..off + dh]);
                    k.row_mut(ti).copy_from_slice(&row[self.dim + off..self.dim + off + dh]);
                    v.row_mut(ti)
                        .copy_from_slice(&row[2 * self.dim + off..2 * self.dim + off + dh]);
                }
                // Scores and row softmax.
                let mut a = q.matmul_bt(&k); // [T, T]
                a.scale(scale);
                for r in 0..t {
                    let row = a.row_mut(r);
                    let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for val in row.iter_mut() {
                        *val = (*val - mx).exp();
                        sum += *val;
                    }
                    let inv = 1.0 / sum;
                    for val in row.iter_mut() {
                        *val *= inv;
                    }
                }
                let o = a.matmul(&v); // [T, dh]
                for ti in 0..t {
                    let dst = concat.row_mut(b * t + ti);
                    dst[h * dh..(h + 1) * dh].copy_from_slice(o.row(ti));
                }
                cache.q.push(q);
                cache.k.push(k);
                cache.v.push(v);
                cache.a.push(a);
            }
        }
        self.cache = Some(cache);
        self.proj.forward(&concat, ctx)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let dconcat = self.proj.backward(grad);
        // INVARIANT: the training loop always runs forward before backward.
        let cache = self.cache.as_ref().expect("attention backward before forward");
        let batch = cache.batch;
        let t = self.tokens;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let mut dqkv = Tensor::zeros(batch * t, 3 * self.dim);
        for b in 0..batch {
            for h in 0..self.heads {
                let idx = b * self.heads + h;
                let (q, k, v, a) =
                    (&cache.q[idx], &cache.k[idx], &cache.v[idx], &cache.a[idx]);
                // dO for this head.
                let mut d_o = Tensor::zeros(t, dh);
                for ti in 0..t {
                    let src = dconcat.row(b * t + ti);
                    d_o.row_mut(ti).copy_from_slice(&src[h * dh..(h + 1) * dh]);
                }
                // O = A V.
                let d_a = d_o.matmul_bt(v); // [T, T]
                let d_v = a.matmul_at(&d_o); // [T, dh]
                // Softmax backward per row: dS = A ⊙ (dA − Σ dA⊙A).
                let mut d_s = Tensor::zeros(t, t);
                for r in 0..t {
                    let arow = a.row(r);
                    let darow = d_a.row(r);
                    let dot: f32 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
                    for c in 0..t {
                        d_s.data[r * t + c] = arow[c] * (darow[c] - dot);
                    }
                }
                d_s.scale(scale);
                // S = Q Kᵀ (scaled already): dQ = dS K, dK = dSᵀ Q.
                let d_q = d_s.matmul(k);
                let d_k = d_s.transpose().matmul(q);
                // Scatter into dqkv.
                for ti in 0..t {
                    let dst = dqkv.row_mut(b * t + ti);
                    let off = h * dh;
                    dst[off..off + dh]
                        .iter_mut()
                        .zip(d_q.row(ti))
                        .for_each(|(d, s)| *d += s);
                    dst[self.dim + off..self.dim + off + dh]
                        .iter_mut()
                        .zip(d_k.row(ti))
                        .for_each(|(d, s)| *d += s);
                    dst[2 * self.dim + off..2 * self.dim + off + dh]
                        .iter_mut()
                        .zip(d_v.row(ti))
                        .for_each(|(d, s)| *d += s);
                }
            }
        }
        self.qkv.backward(&dqkv)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.qkv.visit_params(f);
        self.proj.visit_params(f);
    }
}

// ---------------------------------------------------------------------------
// MLP (feed-forward)
// ---------------------------------------------------------------------------

/// Two-layer feed-forward block with GELU and dropout.
pub struct Mlp {
    fc1: Linear,
    act: Gelu,
    fc2: Linear,
    drop: Dropout,
}

impl Mlp {
    /// New MLP `dim -> hidden -> dim`.
    pub fn new(dim: usize, hidden: usize, dropout: f64, rng: &mut StdRng) -> Self {
        Mlp {
            fc1: Linear::new(dim, hidden, rng),
            act: Gelu::new(),
            fc2: Linear::new(hidden, dim, rng),
            drop: Dropout::new(dropout),
        }
    }
}

impl Layer for Mlp {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let h = self.fc1.forward(x, ctx);
        let h = self.act.forward(&h, ctx);
        let h = self.fc2.forward(&h, ctx);
        self.drop.forward(&h, ctx)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.drop.backward(grad);
        let g = self.fc2.backward(&g);
        let g = self.act.backward(&g);
        self.fc1.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

// ---------------------------------------------------------------------------
// Transformer block
// ---------------------------------------------------------------------------

/// Pre-norm transformer block:
/// `x + DropPath(Attn(LN(x)))` then `x + DropPath(MLP(LN(x)))`.
pub struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    dp1: DropPath,
    ln2: LayerNorm,
    mlp: Mlp,
    dp2: DropPath,
}

impl Block {
    /// New block (Fig. 2 of the paper).
    pub fn new(
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        tokens: usize,
        dropout: f64,
        drop_path: f64,
        rng: &mut StdRng,
    ) -> Self {
        Block {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, tokens, rng),
            dp1: DropPath::new(drop_path, tokens),
            ln2: LayerNorm::new(dim),
            mlp: Mlp::new(dim, dim * mlp_ratio, dropout, rng),
            dp2: DropPath::new(drop_path, tokens),
        }
    }
}

impl Layer for Block {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let h = self.ln1.forward(x, ctx);
        let h = self.attn.forward(&h, ctx);
        let h = self.dp1.forward(&h, ctx);
        let mut y = x.clone();
        y.add_assign(&h);

        let h2 = self.ln2.forward(&y, ctx);
        let h2 = self.mlp.forward(&h2, ctx);
        let h2 = self.dp2.forward(&h2, ctx);
        let mut out = y;
        out.add_assign(&h2);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        // out = y + dp2(mlp(ln2(y)))
        let g_branch = self.dp2.backward(grad);
        let g_branch = self.mlp.backward(&g_branch);
        let g_branch = self.ln2.backward(&g_branch);
        let mut dy = grad.clone();
        dy.add_assign(&g_branch);

        // y = x + dp1(attn(ln1(x)))
        let g2 = self.dp1.backward(&dy);
        let g2 = self.attn.backward(&g2);
        let g2 = self.ln1.backward(&g2);
        let mut dx = dy;
        dx.add_assign(&g2);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::rng::seeded;

    fn ctx_rng() -> StdRng {
        seeded(99)
    }

    /// Generic finite-difference gradient check for a layer: perturbs inputs
    /// and compares dL/dx where L = 0.5||y||².
    fn grad_check_input<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let mut rng = ctx_rng();
        let mut ctx = ForwardCtx { train: false, rng: &mut rng };
        let y = layer.forward(x, &mut ctx);
        let dy = y.clone(); // dL/dy for L = 0.5||y||²
        let dx = layer.backward(&dy);

        let h = 1e-3f32;
        for i in (0..x.len()).step_by((x.len() / 24).max(1)) {
            let mut xp = x.clone();
            xp.data[i] += h;
            let mut rng1 = ctx_rng();
            let mut c1 = ForwardCtx { train: false, rng: &mut rng1 };
            let lp = 0.5 * layer.forward(&xp, &mut c1).data.iter().map(|v| v * v).sum::<f32>();
            let mut xm = x.clone();
            xm.data[i] -= h;
            let mut rng2 = ctx_rng();
            let mut c2 = ForwardCtx { train: false, rng: &mut rng2 };
            let lm = 0.5 * layer.forward(&xm, &mut c2).data.iter().map(|v| v * v).sum::<f32>();
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (dx.data[i] - fd).abs() < tol * (1.0 + fd.abs()),
                "input grad mismatch at {i}: {} vs {fd}",
                dx.data[i]
            );
        }
        // Restore the cache for subsequent use.
        let mut rng3 = ctx_rng();
        let mut c3 = ForwardCtx { train: false, rng: &mut rng3 };
        let _ = layer.forward(x, &mut c3);
    }

    fn test_input(rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i as f32) * 0.37).sin() * 0.5).collect(),
        )
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = seeded(1);
        let mut l = Linear::new(5, 4, &mut rng);
        grad_check_input(&mut l, &test_input(3, 5), 2e-2);
    }

    #[test]
    fn linear_weight_gradcheck() {
        let mut rng = seeded(2);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = test_input(2, 4);
        let mut c_rng = ctx_rng();
        let mut ctx = ForwardCtx { train: false, rng: &mut c_rng };
        let y = l.forward(&x, &mut ctx);
        let dy = y.clone();
        let _ = l.backward(&dy);
        let h = 1e-3f32;
        for i in 0..l.w.value.len() {
            let orig = l.w.value[i];
            l.w.value[i] = orig + h;
            let mut r1 = ctx_rng();
            let mut c1 = ForwardCtx { train: false, rng: &mut r1 };
            let lp = 0.5 * l.forward(&x, &mut c1).data.iter().map(|v| v * v).sum::<f32>();
            l.w.value[i] = orig - h;
            let mut r2 = ctx_rng();
            let mut c2 = ForwardCtx { train: false, rng: &mut r2 };
            let lm = 0.5 * l.forward(&x, &mut c2).data.iter().map(|v| v * v).sum::<f32>();
            l.w.value[i] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (l.w.grad[i] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "weight grad mismatch at {i}: {} vs {fd}",
                l.w.grad[i]
            );
        }
    }

    #[test]
    fn layernorm_normalizes() {
        let mut ln = LayerNorm::new(8);
        let x = test_input(4, 8);
        let mut rng = ctx_rng();
        let mut ctx = ForwardCtx { train: false, rng: &mut rng };
        let y = ln.forward(&x, &mut ctx);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut ln = LayerNorm::new(6);
        grad_check_input(&mut ln, &test_input(3, 6), 3e-2);
    }

    #[test]
    fn gelu_values_and_gradcheck() {
        assert!((Gelu::gelu(0.0)).abs() < 1e-7);
        assert!(Gelu::gelu(3.0) > 2.9);
        assert!(Gelu::gelu(-3.0).abs() < 0.02);
        let mut g = Gelu::new();
        grad_check_input(&mut g, &test_input(3, 5), 2e-2);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5);
        let x = test_input(2, 8);
        let mut rng = ctx_rng();
        let mut ctx = ForwardCtx { train: false, rng: &mut rng };
        assert_eq!(d.forward(&x, &mut ctx), x);
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut d = Dropout::new(0.3);
        let x = Tensor::from_vec(1, 20_000, vec![1.0; 20_000]);
        let mut rng = ctx_rng();
        let mut ctx = ForwardCtx { train: true, rng: &mut rng };
        let y = d.forward(&x, &mut ctx);
        let mean = y.data.iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.03, "inverted dropout mean {mean}");
        // Backward uses the same mask.
        let dx = d.backward(&x);
        assert_eq!(dx, y);
    }

    #[test]
    fn droppath_drops_whole_samples() {
        let mut dp = DropPath::new(0.5, 4);
        let x = Tensor::from_vec(8, 2, vec![1.0; 16]); // 2 samples × 4 tokens
        let mut rng = ctx_rng();
        let mut ctx = ForwardCtx { train: true, rng: &mut rng };
        let y = dp.forward(&x, &mut ctx);
        // Every sample is either fully zero or fully scaled by 2.
        for s in 0..2 {
            let vals: Vec<f32> =
                (s * 4..(s + 1) * 4).flat_map(|r| y.row(r).to_vec()).collect();
            let all_zero = vals.iter().all(|&v| v == 0.0);
            let all_scaled = vals.iter().all(|&v| (v - 2.0).abs() < 1e-6);
            assert!(all_zero || all_scaled, "mixed sample: {vals:?}");
        }
    }

    #[test]
    fn attention_gradcheck_small() {
        let mut rng = seeded(3);
        let mut attn = MultiHeadAttention::new(8, 2, 3, &mut rng);
        grad_check_input(&mut attn, &test_input(6, 8), 5e-2); // 2 samples × 3 tokens
    }

    #[test]
    fn attention_rows_softmax_normalized() {
        let mut rng = seeded(4);
        let mut attn = MultiHeadAttention::new(8, 2, 4, &mut rng);
        let x = test_input(4, 8);
        let mut c_rng = ctx_rng();
        let mut ctx = ForwardCtx { train: false, rng: &mut c_rng };
        let _ = attn.forward(&x, &mut ctx);
        let cache = attn.cache.as_ref().unwrap();
        for a in &cache.a {
            for r in 0..a.rows {
                let s: f32 = a.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
                assert!(a.row(r).iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn mlp_gradcheck() {
        let mut rng = seeded(5);
        let mut mlp = Mlp::new(6, 12, 0.0, &mut rng);
        grad_check_input(&mut mlp, &test_input(4, 6), 3e-2);
    }

    #[test]
    fn block_gradcheck() {
        let mut rng = seeded(6);
        let mut blk = Block::new(8, 2, 2, 2, 0.0, 0.0, &mut rng);
        grad_check_input(&mut blk, &test_input(4, 8), 6e-2); // 2 samples × 2 tokens
    }

    #[test]
    fn block_param_count_matches_formula() {
        let mut rng = seeded(7);
        let mut blk = Block::new(16, 4, 4, 4, 0.0, 0.0, &mut rng);
        let mut count = 0usize;
        blk.visit_params(&mut |p| count += p.value.len());
        let d = 16usize;
        let want = (3 * d * d + 3 * d) + (d * d + d) + (2 * (d * 4 * d) + 4 * d + d) + 4 * d;
        assert_eq!(count, want);
    }
}
