//! ViT architecture configuration and parameter accounting (Table II).

/// Architecture of an SQG-ViT surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct VitConfig {
    /// Input image side length (the SQG grid size `n`).
    pub input_size: usize,
    /// Square patch side length.
    pub patch_size: usize,
    /// Input channels (2 for the two SQG boundary levels).
    pub in_chans: usize,
    /// Number of transformer blocks.
    pub depth: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Embedding (token) dimension.
    pub embed_dim: usize,
    /// MLP hidden dim = `mlp_ratio * embed_dim`.
    pub mlp_ratio: usize,
    /// Dropout probability (attention projection and MLP).
    pub dropout: f64,
    /// Stochastic-depth (DropPath) probability.
    pub drop_path: f64,
}

impl Default for VitConfig {
    fn default() -> Self {
        VitConfig {
            input_size: 64,
            patch_size: 4,
            in_chans: 2,
            depth: 12,
            heads: 8,
            embed_dim: 1024,
            mlp_ratio: 4,
            dropout: 0.0,
            drop_path: 0.0,
        }
    }
}

impl VitConfig {
    /// The three architectures of Table II.
    ///
    /// # Panics
    /// Panics for input sizes other than the paper's 64/128/256.
    pub fn table2(input_size: usize) -> VitConfig {
        match input_size {
            64 => VitConfig { input_size: 64, depth: 12, embed_dim: 1024, ..Default::default() },
            128 => VitConfig { input_size: 128, depth: 24, embed_dim: 2048, ..Default::default() },
            256 => VitConfig { input_size: 256, depth: 48, embed_dim: 2048, ..Default::default() },
            other => panic!("Table II defines inputs 64/128/256, got {other}"),
        }
    }

    /// A small configuration that actually trains fast on a CPU; used by the
    /// OSSE experiments and tests.
    pub fn small(input_size: usize) -> VitConfig {
        VitConfig {
            input_size,
            patch_size: 8,
            in_chans: 2,
            depth: 2,
            heads: 4,
            embed_dim: 64,
            mlp_ratio: 2,
            dropout: 0.0,
            drop_path: 0.0,
        }
    }

    /// Number of tokens (patches) per image.
    pub fn tokens(&self) -> usize {
        let per_side = self.input_size / self.patch_size;
        per_side * per_side
    }

    /// Flattened dimension of one patch.
    pub fn patch_dim(&self) -> usize {
        self.patch_size * self.patch_size * self.in_chans
    }

    /// Validates divisibility constraints.
    pub fn validate(&self) -> Result<(), String> {
        if !self.input_size.is_multiple_of(self.patch_size) {
            return Err(format!(
                "patch size {} must divide input size {}",
                self.patch_size, self.input_size
            ));
        }
        if !self.embed_dim.is_multiple_of(self.heads) {
            return Err(format!(
                "heads {} must divide embed dim {}",
                self.heads, self.embed_dim
            ));
        }
        if self.depth == 0 || self.embed_dim == 0 || self.heads == 0 {
            return Err("depth, embed_dim and heads must be positive".into());
        }
        if !(0.0..1.0).contains(&self.dropout) || !(0.0..1.0).contains(&self.drop_path) {
            return Err("dropout probabilities must be in [0,1)".into());
        }
        Ok(())
    }

    /// Exact learnable-parameter count of the implementation.
    ///
    /// Per block: QKV (`3d² + 3d`), attention projection (`d² + d`), MLP
    /// (`d·rd + rd + rd·d + d`), two LayerNorms (`2·2d`). Plus patch
    /// embedding, learned positional embedding, final LayerNorm and the
    /// de-patchify head.
    pub fn param_count(&self) -> u64 {
        let d = self.embed_dim as u64;
        let r = self.mlp_ratio as u64;
        let per_block = (3 * d * d + 3 * d) + (d * d + d) + (d * r * d + r * d + r * d * d + d)
            + 2 * (2 * d);
        let pd = self.patch_dim() as u64;
        let embed = pd * d + d; // patch embedding (linear)
        let pos = self.tokens() as u64 * d; // learned positional embedding
        let head = d * pd + pd; // linear de-patchify head
        let final_norm = 2 * d;
        per_block * self.depth as u64 + embed + pos + head + final_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameter_counts_match_paper() {
        // Paper: 157M / 1.2B / 2.5B. The exact bookkeeping of embeddings and
        // head differs slightly between implementations; require agreement
        // within 5%.
        let close = |got: u64, want: f64| {
            let rel = (got as f64 - want).abs() / want;
            assert!(rel < 0.05, "{got} vs {want} (rel {rel:.3})");
        };
        close(VitConfig::table2(64).param_count(), 157.0e6);
        close(VitConfig::table2(128).param_count(), 1.2e9);
        close(VitConfig::table2(256).param_count(), 2.5e9);
    }

    #[test]
    fn table2_architectures() {
        let c = VitConfig::table2(128);
        assert_eq!(c.depth, 24);
        assert_eq!(c.embed_dim, 2048);
        assert_eq!(c.heads, 8);
        assert_eq!(c.mlp_ratio, 4);
        assert_eq!(c.patch_size, 4);
        assert_eq!(c.tokens(), 1024);
    }

    #[test]
    fn tokens_and_patch_dim() {
        let c = VitConfig { input_size: 64, patch_size: 4, in_chans: 2, ..Default::default() };
        assert_eq!(c.tokens(), 256);
        assert_eq!(c.patch_dim(), 32);
    }

    #[test]
    fn validation() {
        assert!(VitConfig::default().validate().is_ok());
        assert!(VitConfig { patch_size: 5, ..Default::default() }.validate().is_err());
        assert!(VitConfig { heads: 3, ..Default::default() }.validate().is_err());
        assert!(VitConfig { depth: 0, ..Default::default() }.validate().is_err());
        assert!(VitConfig { dropout: 1.0, ..Default::default() }.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn table2_unknown_size_panics() {
        let _ = VitConfig::table2(512);
    }

    #[test]
    fn small_config_is_valid_and_small() {
        let c = VitConfig::small(64);
        assert!(c.validate().is_ok());
        assert!(c.param_count() < 1_000_000, "small config must stay CPU-trainable");
    }
}
