//! Computational budget estimation (Eq. 18 and Fig. 3).
//!
//! `T = 6 · Π_i (L_i / P_i) · E · M`: six floating-point operations per
//! token per parameter (one multiply-accumulate forward, two backward),
//! times tokens per image, epochs and parameters.

use crate::config::VitConfig;

/// Total training FLOPs per Eq. 18 for `images` training images over
/// `epochs` epochs.
pub fn training_flops(config: &VitConfig, images: u64, epochs: u64) -> f64 {
    let tokens = config.tokens() as u64;
    6.0 * tokens as f64 * images as f64 * epochs as f64 * config.param_count() as f64
}

/// Forward-only (inference) FLOPs per image: 2 ops per token per parameter.
pub fn inference_flops(config: &VitConfig) -> f64 {
    2.0 * config.tokens() as f64 * config.param_count() as f64
}

/// Converts a FLOP total into node-hours given a per-node sustained rate
/// [FLOP/s].
pub fn node_hours(total_flops: f64, sustained_flops_per_node: f64) -> f64 {
    total_flops / sustained_flops_per_node / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq18_scaling_in_each_factor() {
        let c = VitConfig::small(64);
        let base = training_flops(&c, 1000, 10);
        assert!((training_flops(&c, 2000, 10) / base - 2.0).abs() < 1e-12);
        assert!((training_flops(&c, 1000, 20) / base - 2.0).abs() < 1e-12);
        // Quadrupling the input area quadruples the token count.
        let c2 = VitConfig { input_size: 128, ..VitConfig::small(64) };
        let f2 = training_flops(&c2, 1000, 10);
        let tokens_ratio = c2.tokens() as f64 / c.tokens() as f64;
        let param_ratio = c2.param_count() as f64 / c.param_count() as f64;
        assert!((f2 / base - tokens_ratio * param_ratio).abs() < 1e-9);
    }

    #[test]
    fn factor_six_forward_backward() {
        let c = VitConfig::small(64);
        let train = training_flops(&c, 1, 1);
        let infer = inference_flops(&c);
        assert!((train / infer - 3.0).abs() < 1e-12, "training = 3x inference per image");
    }

    #[test]
    fn fig3_magnitudes() {
        // Sanity against Fig. 3's order of magnitude: the 2.5B model on 1M
        // images for 100 epochs lands around 6e21 FLOPs.
        let c = VitConfig::table2(256);
        let t = training_flops(&c, 1_000_000, 100);
        assert!(t > 1e21 && t < 1e23, "Fig. 3 magnitude check: {t:.3e}");
        // And the 157M model should be ~two decades cheaper.
        let small = training_flops(&VitConfig::table2(64), 1_000_000, 100);
        assert!(small < t / 50.0);
    }

    #[test]
    fn node_hours_conversion() {
        // 3.6e15 FLOPs at 1e12 FLOP/s = 3600 s = 1 node-hour.
        assert!((node_hours(3.6e15, 1.0e12) - 1.0).abs() < 1e-12);
    }
}
