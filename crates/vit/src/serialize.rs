//! Weight (de)serialization.
//!
//! A small self-describing binary format (magic, version, per-tensor
//! length-prefixed f32 payloads in visit order) built on `bytes`. Used to
//! hand a pre-trained surrogate from the offline trainer to the OSSE
//! experiments.

use crate::model::SqgVit;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5351_5654; // "SQVT"
const VERSION: u32 = 1;

/// Serializes all model parameters (visit order) into a byte buffer.
pub fn save_weights(model: &mut SqgVit) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    let mut tensors: Vec<Vec<f32>> = Vec::new();
    model.visit_params(&mut |p| tensors.push(p.value.clone()));
    buf.put_u32_le(tensors.len() as u32);
    for t in &tensors {
        buf.put_u32_le(t.len() as u32);
        for &v in t {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Errors from [`load_weights`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Buffer too short or corrupted framing.
    Truncated,
    /// Wrong magic number.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Tensor count or a tensor length differs from the model architecture.
    ShapeMismatch {
        /// Index of the offending tensor (or count mismatch at `usize::MAX`).
        tensor: usize,
    },
    /// A tensor carries NaN/inf weights (corrupt payload).
    NonFinite {
        /// Index of the first offending tensor.
        tensor: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Truncated => write!(f, "weight buffer truncated"),
            LoadError::BadMagic => write!(f, "not a SQG-ViT weight buffer"),
            LoadError::BadVersion(v) => write!(f, "unsupported weight version {v}"),
            LoadError::ShapeMismatch { tensor } => {
                write!(f, "weight shape mismatch at tensor {tensor}")
            }
            LoadError::NonFinite { tensor } => {
                write!(f, "tensor {tensor} contains NaN/inf weights")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads weights saved by [`save_weights`] into a model of the *same
/// architecture*.
pub fn load_weights(model: &mut SqgVit, bytes: &Bytes) -> Result<(), LoadError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 12 {
        return Err(LoadError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(LoadError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;

    // First pass: read everything (validating framing and finiteness).
    let mut tensors: Vec<Vec<f32>> = Vec::with_capacity(count);
    for i in 0..count {
        if buf.remaining() < 4 {
            return Err(LoadError::Truncated);
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < 4 * len {
            return Err(LoadError::Truncated);
        }
        let mut t = Vec::with_capacity(len);
        for _ in 0..len {
            let v = buf.get_f32_le();
            if !v.is_finite() {
                return Err(LoadError::NonFinite { tensor: i });
            }
            t.push(v);
        }
        tensors.push(t);
    }

    // Validate shapes against the model before mutating anything.
    let mut shapes: Vec<usize> = Vec::new();
    model.visit_params(&mut |p| shapes.push(p.value.len()));
    if shapes.len() != tensors.len() {
        return Err(LoadError::ShapeMismatch { tensor: usize::MAX });
    }
    for (i, (s, t)) in shapes.iter().zip(&tensors).enumerate() {
        if *s != t.len() {
            return Err(LoadError::ShapeMismatch { tensor: i });
        }
    }

    let mut it = tensors.into_iter();
    model.visit_params(&mut |p| {
        // INVARIANT: tensor count was checked against the model above.
        p.value = it.next().expect("validated above");
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VitConfig;

    fn tiny() -> SqgVit {
        SqgVit::new(
            VitConfig {
                input_size: 8,
                patch_size: 4,
                in_chans: 2,
                depth: 1,
                heads: 2,
                embed_dim: 16,
                mlp_ratio: 2,
                dropout: 0.0,
                drop_path: 0.0,
            },
            42,
        )
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let mut a = tiny();
        let img: Vec<f32> = (0..128).map(|i| (i as f32 * 0.3).sin()).collect();
        let before = a.predict(&img);
        let blob = save_weights(&mut a);
        let mut b = SqgVit::new(a.config().clone(), 7); // different init
        assert_ne!(b.predict(&img), before);
        load_weights(&mut b, &blob).unwrap();
        assert_eq!(b.predict(&img), before);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut m = tiny();
        let mut blob = BytesMut::from(&save_weights(&mut m)[..]);
        blob[0] ^= 0xFF;
        assert_eq!(load_weights(&mut m, &blob.freeze()), Err(LoadError::BadMagic));
    }

    #[test]
    fn truncation_rejected_without_partial_load() {
        let mut m = tiny();
        let img: Vec<f32> = (0..128).map(|i| (i as f32 * 0.2).cos()).collect();
        let blob = save_weights(&mut m);
        let before = m.predict(&img);
        let cut = blob.slice(0..blob.len() / 2);
        assert_eq!(load_weights(&mut m, &cut), Err(LoadError::Truncated));
        // Model unchanged on failure.
        assert_eq!(m.predict(&img), before);
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut a = tiny();
        let blob = save_weights(&mut a);
        let mut bigger = SqgVit::new(
            VitConfig { embed_dim: 32, ..a.config().clone() },
            1,
        );
        assert!(matches!(
            load_weights(&mut bigger, &blob),
            Err(LoadError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn nan_weights_rejected_without_partial_load() {
        let mut m = tiny();
        let img: Vec<f32> = (0..128).map(|i| (i as f32 * 0.1).sin()).collect();
        let before = m.predict(&img);
        let mut raw = save_weights(&mut m).to_vec();
        // First tensor value sits right after magic/version/count/len.
        raw[16..20].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(
            load_weights(&mut m, &Bytes::from(raw)),
            Err(LoadError::NonFinite { tensor: 0 })
        );
        assert_eq!(m.predict(&img), before, "model must be untouched on failure");
    }

    #[test]
    fn version_checked() {
        let mut m = tiny();
        let blob = save_weights(&mut m);
        let mut raw = BytesMut::from(&blob[..]);
        raw[4] = 99; // version field
        assert_eq!(load_weights(&mut m, &raw.freeze()), Err(LoadError::BadVersion(99)));
    }
}
