//! Learning-rate schedules for the surrogate trainers.
//!
//! Large-scale ViT training (the paper's §III-B) conventionally uses linear
//! warmup followed by cosine decay; online fine-tuning uses a constant
//! (small) rate. The schedule is a pure function of the step index so
//! trainers stay reproducible.

/// A learning-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `peak` over `warmup_steps`, then cosine decay
    /// to `floor` at `total_steps`. Past `total_steps` the rate stays at
    /// `floor`.
    WarmupCosine {
        /// Peak learning rate reached at the end of warmup.
        peak: f32,
        /// Terminal learning rate.
        floor: f32,
        /// Warmup length in steps.
        warmup_steps: u64,
        /// Total schedule length in steps.
        total_steps: u64,
    },
    /// Step decay: `base * gamma^(step / every)`.
    StepDecay {
        /// Initial rate.
        base: f32,
        /// Multiplicative decay factor per stage.
        gamma: f32,
        /// Steps per stage.
        every: u64,
    },
}

impl LrSchedule {
    /// Learning rate at (0-indexed) optimizer step `step`.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::WarmupCosine { peak, floor, warmup_steps, total_steps } => {
                if warmup_steps > 0 && step < warmup_steps {
                    return peak * (step + 1) as f32 / warmup_steps as f32;
                }
                if step >= total_steps {
                    return floor;
                }
                let span = (total_steps - warmup_steps).max(1) as f32;
                let progress = (step - warmup_steps) as f32 / span;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                floor + (peak - floor) * cos
            }
            LrSchedule::StepDecay { base, gamma, every } => {
                base * gamma.powi((step / every.max(1)) as i32)
            }
        }
    }

    /// Validates schedule parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LrSchedule::Constant { lr } => {
                if lr <= 0.0 {
                    return Err("constant lr must be positive".into());
                }
            }
            LrSchedule::WarmupCosine { peak, floor, warmup_steps, total_steps } => {
                if peak <= 0.0 || floor < 0.0 || floor > peak {
                    return Err("need 0 <= floor <= peak, peak > 0".into());
                }
                if warmup_steps > total_steps {
                    return Err("warmup cannot exceed total steps".into());
                }
            }
            LrSchedule::StepDecay { base, gamma, every } => {
                if base <= 0.0 || !(0.0..=1.0).contains(&gamma) || every == 0 {
                    return Err("need base > 0, gamma in [0,1], every > 0".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1_000_000), 0.01);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 0.0,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(4) - 0.5).abs() < 1e-6);
        assert!((s.at(9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 0.1,
            warmup_steps: 0,
            total_steps: 100,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-5);
        // Midpoint: halfway between peak and floor.
        assert!((s.at(50) - 0.55).abs() < 0.02);
        assert!((s.at(100) - 0.1).abs() < 1e-6);
        assert_eq!(s.at(10_000), 0.1);
        // Monotone decreasing after warmup.
        let mut prev = s.at(0);
        for step in 1..=100 {
            let v = s.at(step);
            assert!(v <= prev + 1e-6);
            prev = v;
        }
    }

    #[test]
    fn step_decay_stages() {
        let s = LrSchedule::StepDecay { base: 1.0, gamma: 0.5, every: 10 };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(LrSchedule::Constant { lr: 0.0 }.validate().is_err());
        assert!(LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 2.0,
            warmup_steps: 0,
            total_steps: 10
        }
        .validate()
        .is_err());
        assert!(LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 0.0,
            warmup_steps: 20,
            total_steps: 10
        }
        .validate()
        .is_err());
        assert!(LrSchedule::StepDecay { base: 1.0, gamma: 1.5, every: 10 }.validate().is_err());
    }
}
