//! Property-based tests for the ViT surrogate's numerics.

use proptest::prelude::*;
use vit::train::mse_loss;
use vit::{SqgVit, Tensor, VitConfig};

fn tiny_config() -> VitConfig {
    VitConfig {
        input_size: 8,
        patch_size: 4,
        in_chans: 2,
        depth: 1,
        heads: 2,
        embed_dim: 16,
        mlp_ratio: 2,
        dropout: 0.0,
        drop_path: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tensor matmul is associative within f32 tolerance.
    #[test]
    fn matmul_associative(
        a in prop::collection::vec(-1.0f32..1.0, 3 * 4),
        b in prop::collection::vec(-1.0f32..1.0, 4 * 5),
        c in prop::collection::vec(-1.0f32..1.0, 5 * 2),
    ) {
        let ta = Tensor::from_vec(3, 4, a);
        let tb = Tensor::from_vec(4, 5, b);
        let tc = Tensor::from_vec(5, 2, c);
        let left = ta.matmul(&tb).matmul(&tc);
        let right = ta.matmul(&tb.matmul(&tc));
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul_bt / matmul_at agree with explicit transposes.
    #[test]
    fn transpose_variants_agree(
        a in prop::collection::vec(-1.0f32..1.0, 4 * 6),
        b in prop::collection::vec(-1.0f32..1.0, 3 * 6),
    ) {
        let ta = Tensor::from_vec(4, 6, a);
        let tb = Tensor::from_vec(3, 6, b);
        let fused = ta.matmul_bt(&tb);
        let explicit = ta.matmul(&tb.transpose());
        for (x, y) in fused.data.iter().zip(&explicit.data) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// MSE loss is nonnegative, zero iff identical, and its gradient points
    /// from target to prediction.
    #[test]
    fn mse_properties(
        p in prop::collection::vec(-10.0f32..10.0, 1..64),
        delta in prop::collection::vec(-1.0f32..1.0, 64),
    ) {
        let t: Vec<f32> = p.iter().zip(&delta).map(|(a, d)| a + d).collect();
        let (loss, grad) = mse_loss(&p, &t);
        prop_assert!(loss >= 0.0);
        let (self_loss, _) = mse_loss(&p, &p);
        prop_assert_eq!(self_loss, 0.0);
        for ((g, pi), ti) in grad.iter().zip(&p).zip(&t) {
            // gradient sign matches (pred - target)
            if (pi - ti).abs() > 1e-6 {
                prop_assert!(g.signum() == (pi - ti).signum());
            }
        }
    }

    /// The model is a deterministic function of (config seed, input) and
    /// maps finite inputs to finite outputs of the same shape.
    #[test]
    fn model_deterministic_and_finite(
        img in prop::collection::vec(-2.0f32..2.0, 128),
        seed in 0u64..50,
    ) {
        let mut m = SqgVit::new(tiny_config(), seed);
        let y1 = m.predict(&img);
        let y2 = m.predict(&img);
        prop_assert_eq!(&y1, &y2);
        prop_assert_eq!(y1.len(), 128);
        prop_assert!(y1.iter().all(|v| v.is_finite()));
    }

    /// Eq. 18 FLOP accounting is linear in epochs and images and positive.
    #[test]
    fn flops_linear(images in 1u64..10_000, epochs in 1u64..100) {
        let c = tiny_config();
        let one = vit::flops::training_flops(&c, 1, 1);
        let many = vit::flops::training_flops(&c, images, epochs);
        prop_assert!(one > 0.0);
        prop_assert!((many / one - (images * epochs) as f64).abs() < 1e-6 * (images * epochs) as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Weight loading is total under truncation: every strict prefix of a
    /// valid weight buffer errors cleanly, and the target model's
    /// parameters are left untouched.
    #[test]
    fn load_weights_truncation_rejected_without_partial_load(frac in 0.0f64..1.0) {
        let mut src = SqgVit::new(tiny_config(), 7);
        let full = vit::save_weights(&mut src);
        let cut = ((full.len() as f64) * frac) as usize;
        prop_assume!(cut < full.len());
        let prefix = bytes::Bytes::from(full[..cut].to_vec());

        let mut dst = SqgVit::new(tiny_config(), 99);
        let x = vec![0.1f32; 2 * 8 * 8];
        let before = dst.predict(&x);
        prop_assert!(vit::load_weights(&mut dst, &prefix).is_err());
        prop_assert_eq!(dst.predict(&x), before, "failed load must not mutate the model");
    }

    /// Arbitrary byte corruption never panics and never half-loads: the
    /// result is either a clean error (model untouched) or a fully valid
    /// weight set.
    #[test]
    fn load_weights_corruption_is_total(
        pos in 12usize..4096,
        flip in 1u8..=255,
    ) {
        let mut src = SqgVit::new(tiny_config(), 7);
        let full = vit::save_weights(&mut src);
        prop_assume!(pos < full.len());
        let mut raw = full.to_vec();
        raw[pos] ^= flip;

        let mut dst = SqgVit::new(tiny_config(), 99);
        let x = vec![0.1f32; 2 * 8 * 8];
        let before = dst.predict(&x);
        match vit::load_weights(&mut dst, &bytes::Bytes::from(raw)) {
            Err(_) => prop_assert_eq!(dst.predict(&x), before),
            Ok(()) => prop_assert!(dst.predict(&x).iter().all(|v| v.is_finite())),
        }
    }
}
