//! LETKF analysis cost, including the localization-radius ablation from
//! DESIGN.md (cost grows with the local observation count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use letkf::{GridGeometry, Letkf, LetkfConfig, PointObs};
use stats::gaussian::standard_normal;
use stats::rng::seeded;
use stats::Ensemble;
use std::hint::black_box;

fn setup(n: usize, members: usize) -> (Letkf, Ensemble, Vec<PointObs>) {
    let geo = GridGeometry::new(n, 2, 20.0e6, 1.0e6);
    let dim = geo.state_dim();
    let letkf = Letkf::new(LetkfConfig::default(), geo);
    let mut rng = seeded(1);
    let mut e = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in e.member_mut(m) {
            *x = standard_normal(&mut rng);
        }
    }
    let obs: Vec<PointObs> = (0..dim)
        .map(|i| PointObs { state_index: i, value: 0.1, sigma: 0.5 })
        .collect();
    (letkf, e, obs)
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("letkf_analysis");
    group.sample_size(10);
    for n in [16usize, 32] {
        let (letkf, fc, obs) = setup(n, 20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| letkf.analyze(black_box(&fc), &obs))
        });
    }
    group.finish();
}

fn bench_ablation_cutoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("letkf_ablation_cutoff");
    group.sample_size(10);
    let n = 16;
    let geo = GridGeometry::new(n, 2, 20.0e6, 1.0e6);
    let dim = geo.state_dim();
    let mut rng = seeded(2);
    let mut fc = Ensemble::zeros(20, dim);
    for m in 0..20 {
        for x in fc.member_mut(m) {
            *x = standard_normal(&mut rng);
        }
    }
    let obs: Vec<PointObs> =
        (0..dim).map(|i| PointObs { state_index: i, value: 0.1, sigma: 0.5 }).collect();
    for cutoff_km in [1000u64, 2000, 4000] {
        let letkf = Letkf::new(
            LetkfConfig { cutoff: cutoff_km as f64 * 1e3, rtps_alpha: 0.3 },
            geo.clone(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(cutoff_km),
            &cutoff_km,
            |b, _| b.iter(|| letkf.analyze(black_box(&fc), &obs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_ablation_cutoff);
criterion_main!(benches);
