//! EnSF analysis cost: score estimation, SDE integration, full update —
//! including the DESIGN.md ablations (SDE steps, mini-batch, time grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ensf::{DiffusionSchedule, Ensf, EnsfConfig, IdentityObs, ScoreEstimator};
use stats::gaussian::standard_normal;
use stats::rng::seeded;
use stats::Ensemble;
use std::hint::black_box;

fn gaussian_ensemble(members: usize, dim: usize, seed: u64) -> Ensemble {
    let mut rng = seeded(seed);
    let mut e = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in e.member_mut(m) {
            *x = standard_normal(&mut rng);
        }
    }
    e
}

fn bench_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensf_score_eval");
    for dim in [1024usize, 8192] {
        let ens = gaussian_ensemble(20, dim, 1);
        let est = ScoreEstimator::new(ens.as_slice(), 20, dim, DiffusionSchedule::default());
        let z = vec![0.1; dim];
        let mut out = vec![0.0; dim];
        let mut scratch = vec![0.0; 20];
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| est.score_into(black_box(&z), 0.5, &mut out, &mut scratch))
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensf_analysis");
    group.sample_size(10);
    // Dimension sweep (the Fig. 10 x-axis at laptop scale).
    for dim in [1024usize, 8192] {
        let fc = gaussian_ensemble(20, dim, 2);
        let obs = IdentityObs::new(dim, 0.5);
        let y = vec![0.3; dim];
        group.bench_with_input(BenchmarkId::new("dim", dim), &dim, |b, _| {
            let mut filter = Ensf::new(EnsfConfig { n_steps: 30, seed: 3, ..Default::default() });
            b.iter(|| filter.analyze(black_box(&fc), &y, &obs))
        });
    }
    group.finish();
}

fn bench_ablation_sde_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensf_ablation_sde_steps");
    group.sample_size(10);
    let dim = 2048;
    let fc = gaussian_ensemble(20, dim, 4);
    let obs = IdentityObs::new(dim, 0.5);
    let y = vec![0.3; dim];
    for steps in [10usize, 30, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &s| {
            let mut filter = Ensf::new(EnsfConfig { n_steps: s, seed: 5, ..Default::default() });
            b.iter(|| filter.analyze(black_box(&fc), &y, &obs))
        });
    }
    group.finish();
}

fn bench_ablation_minibatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensf_ablation_minibatch");
    group.sample_size(10);
    let dim = 2048;
    let fc = gaussian_ensemble(40, dim, 6);
    let obs = IdentityObs::new(dim, 0.5);
    let y = vec![0.3; dim];
    for j in [5usize, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(j), &j, |b, &jj| {
            let mut filter = Ensf::new(EnsfConfig {
                n_steps: 30,
                minibatch: Some(jj),
                seed: 7,
                ..Default::default()
            });
            b.iter(|| filter.analyze(black_box(&fc), &y, &obs))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_score,
    bench_analysis,
    bench_ablation_sde_steps,
    bench_ablation_minibatch
);
criterion_main!(benches);
