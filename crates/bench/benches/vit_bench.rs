//! ViT surrogate forward/backward cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vit::train::{mse_loss, Sample, Trainer};
use vit::{SqgVit, VitConfig};

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("vit_forward");
    group.sample_size(10);
    for (label, cfg) in [
        ("small_16", VitConfig::small(16)),
        ("small_64", VitConfig::small(64)),
    ] {
        let mut model = SqgVit::new(cfg.clone(), 1);
        let img = vec![0.1f32; cfg.in_chans * cfg.input_size * cfg.input_size];
        group.bench_function(label, |b| b.iter(|| model.predict(black_box(&img))));
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("vit_train_step");
    group.sample_size(10);
    let cfg = VitConfig::small(16);
    let dim = cfg.in_chans * cfg.input_size * cfg.input_size;
    let mut model = SqgVit::new(cfg, 2);
    let mut trainer = Trainer::new(1e-3, 4, 3);
    let batch: Vec<Sample> = (0..4)
        .map(|k| Sample {
            x: (0..dim).map(|i| ((i + k) as f32 * 0.1).sin()).collect(),
            y: (0..dim).map(|i| ((i + k) as f32 * 0.1).cos()).collect(),
        })
        .collect();
    group.bench_function("batch4_16", |b| {
        b.iter(|| trainer.step(&mut model, black_box(&batch)))
    });
    group.finish();
}

fn bench_loss(c: &mut Criterion) {
    let a: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.01).sin()).collect();
    let b2: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.011).cos()).collect();
    c.bench_function("mse_loss_8192", |b| b.iter(|| mse_loss(black_box(&a), black_box(&b2))));
}

criterion_group!(benches, bench_forward, bench_train_step, bench_loss);
criterion_main!(benches);
