//! SQG model step cost: the forecast kernel of every DA experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqg::{SqgModel, SqgParams};
use std::hint::black_box;

fn bench_sqg_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqg_step");
    group.sample_size(20);
    for n in [32usize, 64, 128] {
        let params = SqgParams { n, ..Default::default() };
        let mut model = SqgModel::new(params);
        let state = model.spinup_nature(1, 0.05, 20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = state.clone();
                model.step_spectral(black_box(&mut s), 1);
                s
            })
        });
    }
    group.finish();
}

fn bench_12h_forecast(c: &mut Criterion) {
    // One observation interval (48 steps at dt = 900 s) on the paper grid.
    let params = SqgParams::default();
    let mut model = SqgModel::new(params);
    let state = model.spinup_nature(2, 0.05, 20).to_state_vector();
    let mut group = c.benchmark_group("sqg_12h_forecast_64");
    group.sample_size(10);
    group.bench_function("member", |b| {
        b.iter(|| {
            let mut s = state.clone();
            model.forecast(black_box(&mut s), 48);
            s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sqg_step, bench_12h_forecast);
criterion_main!(benches);
