//! Cost-model evaluation speed and simulated-MPI round-trip benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use hpc::mpi::run_world;
use hpc::{bus_bandwidth, collective_time, simulate_step, Collective, Strategy, Topology, TrainJob};
use std::hint::black_box;

const MB: u64 = 1024 * 1024;

fn bench_cost_model(c: &mut Criterion) {
    let topo = Topology::frontier(1024);
    c.bench_function("collective_time_eval", |b| {
        b.iter(|| {
            collective_time(black_box(&topo), Collective::AllReduce, 1024, 256 * MB)
        })
    });
    c.bench_function("bus_bandwidth_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in [8u64, 64, 256, 1024] {
                acc += bus_bandwidth(&topo, Collective::AllGather, 1024, s * MB);
            }
            acc
        })
    });
    c.bench_function("simulate_step_eval", |b| {
        let job = TrainJob::table2(128);
        b.iter(|| simulate_step(&topo, black_box(&job), Strategy::Ddp, 1024, 120 * MB))
    });
}

fn bench_sim_mpi(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_mpi");
    group.sample_size(10);
    group.bench_function("allreduce_8ranks_4k", |b| {
        b.iter(|| {
            run_world(8, |comm| {
                let mut buf = vec![comm.rank() as f64; 4096];
                comm.allreduce_sum(&mut buf);
                buf[0]
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model, bench_sim_mpi);
criterion_main!(benches);
