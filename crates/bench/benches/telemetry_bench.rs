//! Telemetry overhead micro-benchmarks.
//!
//! The telemetry layer's contract is that *disabled* instrumentation is
//! effectively free: one relaxed atomic load per call site, no allocation,
//! no locking. These benches measure that directly — the disabled-mode
//! span and counter figures should stay in the low-nanosecond range (the
//! budget documented in `crates/bench/README.md` is < 20 ns/call) so the
//! hot loops of the SQG stepper and the filters can stay instrumented
//! unconditionally. The enabled-mode figures are reported alongside for
//! contrast, not held to a budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_disabled(c: &mut Criterion) {
    telemetry::set_enabled(false);
    let mut group = c.benchmark_group("telemetry_disabled");
    group.bench_function("enabled_check", |b| {
        b.iter(|| black_box(telemetry::enabled()))
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let guard = telemetry::span!("bench.disabled.span");
            black_box(&guard);
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| telemetry::counter_add(black_box("bench.disabled.counter"), 1))
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| telemetry::histogram_record(black_box("bench.disabled.hist"), 1.5))
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    telemetry::set_enabled(true);
    telemetry::reset();
    let mut group = c.benchmark_group("telemetry_enabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let guard = telemetry::span!("bench.enabled.span");
            black_box(&guard);
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| telemetry::counter_add(black_box("bench.enabled.counter"), 1))
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| telemetry::histogram_record(black_box("bench.enabled.hist"), 1.5))
    });
    group.finish();
    telemetry::set_enabled(false);
    telemetry::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
