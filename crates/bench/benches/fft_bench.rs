//! FFT micro-benchmarks: the inner kernels of the SQG spectral model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fft::{Complex, Direction, Fft2, FftPlan};
use std::hint::black_box;

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for n in [64usize, 256, 1024] {
        let plan = FftPlan::new(n, Direction::Forward);
        let data: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64 * 0.3).sin(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.process(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    for n in [64usize, 128] {
        let plan = Fft2::new(n, n, Direction::Forward);
        let data: Vec<Complex> =
            (0..n * n).map(|i| Complex::new((i as f64 * 0.01).cos(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.process(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

fn bench_bluestein(c: &mut Criterion) {
    // Non-power-of-two path.
    let n = 96;
    let plan = FftPlan::new(n, Direction::Forward);
    let data: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
    c.bench_function("fft_bluestein_96", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            plan.process(black_box(&mut buf));
            buf
        })
    });
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d, bench_bluestein);
criterion_main!(benches);
