//! Dense GEMM micro-benchmarks (f64 linalg and f32 ViT tensor paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{gemm, Matrix};
use std::hint::black_box;
use vit::Tensor;

fn bench_f64_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_f64");
    for n in [32usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * n + cc) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |r, cc| ((r + cc) as f64 * 0.02).cos());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| gemm::matmul(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_f32_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_f32_vit");
    for n in [64usize, 256] {
        let a = Tensor::from_vec(n, n, (0..n * n).map(|i| (i as f32 * 0.01).sin()).collect());
        let b = Tensor::from_vec(n, n, (0..n * n).map(|i| (i as f32 * 0.02).cos()).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    group.finish();
}

fn bench_eigh(c: &mut Criterion) {
    // The LETKF's per-gridpoint m x m eigensolve (m = ensemble size).
    for m in [20usize, 40] {
        let base = Matrix::from_fn(m, m, |r, cc| ((r * m + cc) as f64 * 0.13).sin());
        let sym = gemm::matmul_a_bt(&base, &base);
        c.bench_function(&format!("jacobi_eigh_{m}"), |bch| {
            bch.iter(|| linalg::SymEig::new(black_box(&sym)))
        });
    }
}

criterion_group!(benches, bench_f64_gemm, bench_f32_gemm, bench_eigh);
criterion_main!(benches);
