//! Fig. 10: weak scaling of the EnSF — modeled at Frontier scale and
//! *measured* on this machine with the rank-decomposed filter.
//!
//! The paper parallelizes EnSF along the ensemble; per-rank work is fixed,
//! so the time per analysis step should stay flat as ranks grow and scale
//! linearly in the state dimension.

use bench::Json;
use ensf::parallel::{analyze_partitioned, RankPlan};
use ensf::{EnsfConfig, IdentityObs};
use hpc::{ensf_step_time, EnsfJob, Topology};
use stats::gaussian::standard_normal;
use stats::rng::seeded;
use stats::Ensemble;
use std::time::Instant;

fn main() {
    bench::header("Fig. 10", "EnSF weak scaling (ensemble-parallel)");

    // --- Modeled at Frontier scale (the paper's axes). ---
    println!("modeled on Frontier (20 members/rank, 50 SDE steps):");
    print!("{:>10}", "dim\\ranks");
    let ranks = [8usize, 32, 128, 512, 1024];
    for &r in &ranks {
        print!(" {:>9}", r);
    }
    println!();
    let mut modeled = Vec::new();
    for dim in [1_000_000u64, 10_000_000, 100_000_000] {
        let job = EnsfJob { dim, members_per_rank: 20, sde_steps: 50 };
        print!("{:>10.0e}", dim as f64);
        for &r in &ranks {
            let t = ensf_step_time(&Topology::frontier(r), &job, r);
            print!(" {:>8.2}s", t);
            modeled.push(Json::obj(vec![
                ("dim", Json::from(dim)),
                ("ranks", Json::from(r)),
                ("step_secs", Json::Num(t)),
            ]));
        }
        println!();
    }
    println!("(paper: ~0.4 s/step at 1e6, ~28 s at 1e8; flat across ranks)\n");

    // --- Measured on this machine (threads as ranks). ---
    // The paper's rank layout is "straightforwardly parallel" over the
    // ensemble; here we measure that directly: a fixed 16-member ensemble
    // partitioned over 1..8 ranks must speed up near-linearly (each rank's
    // block is independent), which is exactly what makes the weak scaling
    // above flat.
    println!("measured here (16 members, dim 4096, 20 SDE steps; fixed ensemble");
    println!("partitioned over more ranks):");
    let dim = 4096;
    let members = 16;
    let config = EnsfConfig { n_steps: 20, seed: 7, ..Default::default() };
    let obs = IdentityObs::new(dim, 0.5);
    let y = vec![0.2; dim];
    let mut rng = seeded(11);
    let mut fc = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in fc.member_mut(m) {
            *x = standard_normal(&mut rng);
        }
    }
    println!("{:>8} {:>14} {:>10}", "ranks", "time/step", "speedup");
    let mut t1 = 0.0f64;
    let mut measured = Vec::new();
    for ranks in [1usize, 2, 4, 8] {
        let plan = RankPlan::new(members, ranks);
        let _ = analyze_partitioned(&config, 0, &plan, &fc, &y, &obs); // warm-up
        let reps = 3;
        let t0 = Instant::now();
        for c in 0..reps {
            let _ = analyze_partitioned(&config, c + 1, &plan, &fc, &y, &obs);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        if ranks == 1 {
            t1 = dt;
        }
        println!("{:>8} {:>13.3}s {:>9.2}x", ranks, dt, t1 / dt);
        measured.push(Json::obj(vec![
            ("ranks", Json::from(ranks)),
            ("step_secs", Json::Num(dt)),
            ("speedup", Json::Num(t1 / dt)),
        ]));
    }
    println!("\nper-rank blocks are independent (bitwise identical to the serial");
    println!("filter), so fixed per-rank work => flat time/step at any scale.");

    bench::emit_json(
        "fig10",
        "EnSF weak scaling (ensemble-parallel)",
        Json::obj(vec![
            ("modeled", Json::Arr(modeled)),
            ("measured", Json::Arr(measured)),
        ]),
    );
}
