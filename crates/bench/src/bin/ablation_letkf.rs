//! LETKF tuning ablations (DESIGN.md §4): localization cutoff and RTPS
//! factor sweeps on the twin experiment, reproducing the kind of tuning
//! study behind the paper's "optimally tuned" baseline (cutoff 2000 km,
//! RTPS 0.3).

use da_core::osse::{nature_run, run_experiment, OsseConfig};
use da_core::{LetkfScheme, SqgForecast};
use letkf::LetkfConfig;
use sqg::SqgParams;

fn base_osse() -> OsseConfig {
    OsseConfig {
        params: SqgParams { n: 16, ..Default::default() },
        cycles: 20,
        obs_sigma: 0.005,
        ens_size: 12,
        ic_sigma: 0.01,
        spinup_steps: 200,
        seed: 99,
        ..Default::default()
    }
}

fn run_with(config: LetkfConfig) -> f64 {
    let osse = base_osse();
    let nature = nature_run(&osse);
    let mut model = SqgForecast::perfect(osse.params.clone());
    let mut scheme = LetkfScheme::new(config, &osse.params, osse.obs_sigma);
    let series = run_experiment("letkf", &osse, &nature, &mut model, &mut scheme)
        .expect("ablation OSSE is well-formed");
    series.steady_rmse()
}

fn main() {
    bench::header("LETKF ablations", "localization cutoff and RTPS inflation sweeps");
    println!("(16 x 16 x 2 SQG OSSE, 20 cycles, 12 members; steady-state RMSE)\n");

    println!("Gaspari-Cohn cutoff (RTPS 0.3):");
    for cutoff_km in [500u64, 1000, 2000, 4000, 8000] {
        let rmse = run_with(LetkfConfig { cutoff: cutoff_km as f64 * 1e3, rtps_alpha: 0.3 });
        println!("  {cutoff_km:>5} km   {rmse:.5}");
    }

    println!("\nRTPS factor (cutoff 2000 km):");
    for alpha in [0.0f64, 0.15, 0.3, 0.6, 0.9] {
        let rmse = run_with(LetkfConfig { cutoff: 2.0e6, rtps_alpha: alpha });
        println!("  alpha {alpha:<5} {rmse:.5}");
    }

    println!("\nreading: mid-range cutoffs and moderate RTPS minimize RMSE — the");
    println!("paper's tuned (2000 km, 0.3) lands in the flat optimum of this sweep.");
}
