//! Bench-regression gate: compares a fresh `perf_suite` / `scaling_suite`
//! / `elastic_suite` / `scenario_suite` run against the committed
//! baselines and fails on large regressions.
//!
//! The committed `BENCH_perf.json` / `BENCH_scaling.json` /
//! `BENCH_elastic.json` / `BENCH_scenarios.json` hold paper-scale
//! shapes, while CI runs the suites with `--quick` (small shapes), so raw
//! wall times are not comparable across the pair. The gate therefore
//! checks **shape-independent derived ratios** — kernel speedups, scaling
//! efficiency, GFLOPS throughput — each with its own tolerance: a fresh
//! value below `baseline × (1 − tolerance)` fails the gate. Metrics
//! missing from either file are reported as skipped, never failed, so the
//! gate degrades gracefully when a suite gains or loses a section.
//!
//! Run: `cargo run --release -p bench --bin bench_gate -- \
//!   --fresh-perf BENCH_perf_quick.json --baseline-perf BENCH_perf.json \
//!   --fresh-scaling BENCH_scaling_quick.json --baseline-scaling BENCH_scaling.json`

use bench::Json;

/// One gated metric: a named extractor plus a relative tolerance.
struct Metric {
    /// Dotted metric name shown in the report.
    name: &'static str,
    /// Allowed relative regression: fail when
    /// `fresh < baseline × (1 − tolerance)`.
    tolerance: f64,
    /// Absolute acceptance floor on the *baseline* value: the committed
    /// artifact itself must demonstrate at least this much, independent of
    /// the fresh run. Encodes requirements like "the flow analysis is ≥5×
    /// faster at matched RMSE" that a quick fresh run cannot re-prove.
    min_baseline: Option<f64>,
    /// Pulls the metric out of a suite report; `None` ⇒ skip.
    extract: fn(&Json) -> Option<f64>,
}

/// Minimum `speedup` across the EnSF kernel rows.
fn ensf_min_speedup(doc: &Json) -> Option<f64> {
    let rows = doc.get("results")?.get("ensf")?.as_arr()?;
    rows.iter()
        .map(|r| r.get("speedup").and_then(Json::as_f64))
        .collect::<Option<Vec<f64>>>()?
        .into_iter()
        .reduce(f64::min)
}

/// Plan acquisition speedup (fresh build vs warm cache lookup), clamped at
/// 10×: beyond that the cache is plainly working and the exact ratio is
/// machine noise (lookup cost is a few lock-protected map probes).
fn sqg_plan_cache_speedup(doc: &Json) -> Option<f64> {
    let raw = doc.get("results")?.get("sqg")?.get("plan_cache_speedup")?.as_f64()?;
    Some(raw.min(10.0))
}

/// Flow-matching analysis speedup over the 100-step reverse SDE at matched
/// RMSE, scaled against the ≥5× acceptance target and clamped at 1.0: the
/// headline requirement is "at least 5×", not a particular margin above it.
fn flow_speedup_at_matched_rmse(doc: &Json) -> Option<f64> {
    let raw = doc.get("results")?.get("flow")?.get("speedup_at_matched_rmse")?.as_f64()?;
    Some((raw / 5.0).min(1.0))
}

/// Accuracy side of the matched-RMSE headline: 1.0 when the matched flow
/// RMSE is within 10% of the 100-step SDE baseline (ratio ≤ 1.1), falling
/// off as the corridor is missed.
fn flow_matched_rmse_ratio(doc: &Json) -> Option<f64> {
    let ratio = doc.get("results")?.get("flow")?.get("matched_rmse_ratio")?.as_f64()?;
    (ratio > 0.0).then(|| (1.1 / ratio).min(1.0))
}

fn gemm_matmul_gflops(doc: &Json) -> Option<f64> {
    doc.get("results")?.get("gemm")?.get("matmul_gflops")?.as_f64()
}

fn gemm_abt_gflops(doc: &Json) -> Option<f64> {
    doc.get("results")?.get("gemm")?.get("abt_gflops")?.as_f64()
}

/// Strong-scaling speedup at a fixed rank count (rank counts shared by the
/// quick and full ladders, so the ratio is comparable across shapes).
fn strong_speedup_at(doc: &Json, ranks: i64) -> Option<f64> {
    let rows = doc.get("results")?.get("strong")?.as_arr()?;
    rows.iter()
        .find(|r| r.get("ranks").and_then(Json::as_i64) == Some(ranks))?
        .get("speedup")?
        .as_f64()
}

fn strong_speedup_2(doc: &Json) -> Option<f64> {
    strong_speedup_at(doc, 2)
}

fn strong_speedup_4(doc: &Json) -> Option<f64> {
    strong_speedup_at(doc, 4)
}

/// The perf-suite metrics. Speedup ratios survive the quick/full shape
/// change but compress at small sizes, so their tolerances are looser
/// than the headline 25%.
const PERF_METRICS: &[Metric] = &[
    Metric {
        name: "ensf.min_speedup",
        tolerance: 0.60,
        min_baseline: None,
        extract: ensf_min_speedup,
    },
    Metric {
        name: "sqg.plan_cache_speedup",
        tolerance: 0.40,
        min_baseline: None,
        extract: sqg_plan_cache_speedup,
    },
    Metric {
        name: "gemm.matmul_gflops",
        tolerance: 0.50,
        min_baseline: None,
        extract: gemm_matmul_gflops,
    },
    Metric {
        name: "gemm.abt_gflops",
        tolerance: 0.50,
        min_baseline: None,
        extract: gemm_abt_gflops,
    },
    // The flow-matching headline: the committed baseline must demonstrate
    // ≥5× analysis speedup (scaled metric = 1.0) at RMSE within 10% of the
    // 100-step SDE. The fresh-run tolerances are loose because the quick
    // OSSE is tiny and its matched step count jitters; the acceptance
    // floors bind on the committed artifact.
    Metric {
        name: "flow.speedup_at_matched_rmse",
        tolerance: 0.60,
        min_baseline: Some(1.0),
        extract: flow_speedup_at_matched_rmse,
    },
    Metric {
        name: "flow.matched_rmse_ratio",
        tolerance: 0.30,
        min_baseline: Some(1.0),
        extract: flow_matched_rmse_ratio,
    },
];

/// The scaling-suite metrics.
const SCALING_METRICS: &[Metric] = &[
    Metric {
        name: "scaling.strong_speedup@2",
        tolerance: 0.40,
        min_baseline: None,
        extract: strong_speedup_2,
    },
    Metric {
        name: "scaling.strong_speedup@4",
        tolerance: 0.60,
        min_baseline: None,
        extract: strong_speedup_4,
    },
];

/// A named field of one elastic-suite scenario row.
fn elastic_scenario_field(doc: &Json, scenario: &str, field: &str) -> Option<f64> {
    let rows = doc.get("results")?.get("scenarios")?.as_arr()?;
    rows.iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some(scenario))?
        .get(field)?
        .as_f64()
}

fn elastic_hit_rate_clean(doc: &Json) -> Option<f64> {
    elastic_scenario_field(doc, "clean", "hit_rate")
}

fn elastic_hit_rate_kill(doc: &Json) -> Option<f64> {
    elastic_scenario_field(doc, "one_kill", "hit_rate")
}

fn elastic_hit_rate_straggler(doc: &Json) -> Option<f64> {
    elastic_scenario_field(doc, "straggler", "hit_rate")
}

/// Fraction of scripted cycles the killed run still completed — survival
/// of the cycling loop, independent of the deadline ladder.
fn elastic_kill_completion(doc: &Json) -> Option<f64> {
    let done = elastic_scenario_field(doc, "one_kill", "completed_cycles")?;
    let cycles = elastic_scenario_field(doc, "one_kill", "cycles")?;
    (cycles > 0.0).then(|| done / cycles)
}

/// The elastic-suite metrics. Hit-rates are genuine ratios in `[0, 1]` and
/// shape-independent, so the tolerances are tight: with a baseline of 1.0
/// the 5% tolerance on the killed run is exactly the ≥ 0.95 acceptance
/// floor of the fault-tolerance study.
const ELASTIC_METRICS: &[Metric] = &[
    Metric {
        name: "elastic.hit_rate_clean",
        tolerance: 0.01,
        min_baseline: None,
        extract: elastic_hit_rate_clean,
    },
    Metric {
        name: "elastic.hit_rate_kill",
        tolerance: 0.05,
        min_baseline: None,
        extract: elastic_hit_rate_kill,
    },
    Metric {
        name: "elastic.hit_rate_straggler",
        tolerance: 0.25,
        min_baseline: None,
        extract: elastic_hit_rate_straggler,
    },
    Metric {
        name: "elastic.kill_completion",
        tolerance: 0.01,
        min_baseline: None,
        extract: elastic_kill_completion,
    },
];

/// A named field of one scenario-suite `(scenario, method)` row.
fn scenario_field(doc: &Json, scenario: &str, method: &str, field: &str) -> Option<f64> {
    let rows = doc.get("results")?.get("scenarios")?.as_arr()?;
    rows.iter()
        .find(|r| {
            r.get("scenario").and_then(Json::as_str) == Some(scenario)
                && r.get("method").and_then(Json::as_str) == Some(method)
        })?
        .get(field)?
        .as_f64()
}

/// Unobserved-region RMSE advantage of the inpainting EnSF over the
/// mask-ignoring baseline on the headline 25 % block outage, scaled
/// against the ≥1.25× acceptance target and clamped at 1.0 (the
/// requirement is "at least 25 % better", not a particular margin; in
/// practice the ratio is ~10×, and a diverged baseline serializes its
/// RMSE as `null` ⇒ skip, caught by the divergence of the ratio itself
/// on the committed artifact).
fn scenario_inpaint_advantage(doc: &Json) -> Option<f64> {
    let inpaint = scenario_field(doc, "block25", "ensf_inpaint", "rmse_unobserved")?;
    let ignore = scenario_field(doc, "block25", "ensf_ignore", "rmse_unobserved")?;
    (inpaint > 0.0).then(|| (ignore / inpaint / 1.25).min(1.0))
}

/// The same unobserved-region advantage for the few-step probability-flow
/// inpainting variant.
fn scenario_flow_advantage(doc: &Json) -> Option<f64> {
    let inpaint = scenario_field(doc, "block25", "flow_inpaint", "rmse_unobserved")?;
    let ignore = scenario_field(doc, "block25", "ensf_ignore", "rmse_unobserved")?;
    (inpaint > 0.0).then(|| (ignore / inpaint / 1.25).min(1.0))
}

/// Latency side of the headline: the inpainting analysis must fit the
/// masked-LETKF latency budget. Scaled `letkf_secs / inpaint_secs`,
/// clamped at 1.0 (≥1 ⇒ inpainting is at least as fast).
fn scenario_inpaint_latency(doc: &Json) -> Option<f64> {
    let inpaint = scenario_field(doc, "block25", "ensf_inpaint", "analysis_secs")?;
    let letkf = scenario_field(doc, "block25", "letkf_masked", "analysis_secs")?;
    (inpaint > 0.0).then(|| (letkf / inpaint).min(1.0))
}

/// The scenario-suite metrics. The advantage ratios clamp at their
/// acceptance targets, so the committed baseline must demonstrate the
/// full headline (scaled 1.0) while quick fresh runs only need to stay
/// within tolerance of it.
const SCENARIO_METRICS: &[Metric] = &[
    Metric {
        name: "scenario.inpaint_advantage",
        tolerance: 0.50,
        min_baseline: Some(1.0),
        extract: scenario_inpaint_advantage,
    },
    Metric {
        name: "scenario.flow_advantage",
        tolerance: 0.50,
        min_baseline: Some(1.0),
        extract: scenario_flow_advantage,
    },
    Metric {
        name: "scenario.inpaint_latency_vs_letkf",
        tolerance: 0.50,
        min_baseline: Some(1.0),
        extract: scenario_inpaint_latency,
    },
];

/// Outcome of one metric comparison.
#[derive(Debug, PartialEq)]
enum Verdict {
    Ok { fresh: f64, baseline: f64 },
    Regressed { fresh: f64, baseline: f64, floor: f64 },
    /// The committed baseline itself fails the metric's absolute
    /// acceptance floor — a stale or regressed artifact, not a fresh-run
    /// problem.
    BaselineBelowFloor { baseline: f64, floor: f64 },
    Skipped,
}

fn judge(metric: &Metric, fresh: &Json, baseline: &Json) -> Verdict {
    match ((metric.extract)(fresh), (metric.extract)(baseline)) {
        (Some(f), Some(b)) => {
            if let Some(min) = metric.min_baseline {
                if b < min {
                    return Verdict::BaselineBelowFloor { baseline: b, floor: min };
                }
            }
            let floor = b * (1.0 - metric.tolerance);
            if f < floor {
                Verdict::Regressed { fresh: f, baseline: b, floor }
            } else {
                Verdict::Ok { fresh: f, baseline: b }
            }
        }
        _ => Verdict::Skipped,
    }
}

/// Judges every metric of one suite pair; returns the number of failures.
fn gate_suite(label: &str, metrics: &[Metric], fresh: &Json, baseline: &Json) -> usize {
    println!("{label}:");
    let mut failures = 0;
    for m in metrics {
        match judge(m, fresh, baseline) {
            Verdict::Ok { fresh, baseline } => {
                println!(
                    "  {:<28} fresh {:>10.4}  baseline {:>10.4}  (tol {:.0}%)  ok",
                    m.name,
                    fresh,
                    baseline,
                    m.tolerance * 100.0
                );
            }
            Verdict::Regressed { fresh, baseline, floor } => {
                println!(
                    "  {:<28} fresh {:>10.4}  baseline {:>10.4}  floor {:.4}  REGRESSED",
                    m.name, fresh, baseline, floor
                );
                failures += 1;
            }
            Verdict::BaselineBelowFloor { baseline, floor } => {
                println!(
                    "  {:<28} baseline {:>10.4} below acceptance floor {:.4}  BASELINE FAILS",
                    m.name, baseline, floor
                );
                failures += 1;
            }
            Verdict::Skipped => {
                println!("  {:<28} skipped (missing from fresh or baseline)", m.name);
            }
        }
    }
    failures
}

fn load(args: &[String], flag: &str) -> Option<Json> {
    let path = args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))?;
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {flag} {path}: {e}"));
    Some(
        telemetry::json::parse(&text)
            .unwrap_or_else(|e| panic!("{flag} {path} is not valid JSON: {e}")),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("bench_gate: fresh-vs-baseline regression check on derived ratios\n");

    let mut failures = 0;
    let mut compared = 0;
    if let (Some(fresh), Some(base)) = (load(&args, "--fresh-perf"), load(&args, "--baseline-perf"))
    {
        failures += gate_suite("perf_suite", PERF_METRICS, &fresh, &base);
        compared += 1;
    }
    if let (Some(fresh), Some(base)) =
        (load(&args, "--fresh-scaling"), load(&args, "--baseline-scaling"))
    {
        failures += gate_suite("scaling_suite", SCALING_METRICS, &fresh, &base);
        compared += 1;
    }
    if let (Some(fresh), Some(base)) =
        (load(&args, "--fresh-elastic"), load(&args, "--baseline-elastic"))
    {
        failures += gate_suite("elastic_suite", ELASTIC_METRICS, &fresh, &base);
        compared += 1;
    }
    if let (Some(fresh), Some(base)) =
        (load(&args, "--fresh-scenarios"), load(&args, "--baseline-scenarios"))
    {
        failures += gate_suite("scenario_suite", SCENARIO_METRICS, &fresh, &base);
        compared += 1;
    }
    if compared == 0 {
        eprintln!(
            "bench_gate: nothing to compare; pass --fresh-perf/--baseline-perf, \
             --fresh-scaling/--baseline-scaling, --fresh-elastic/--baseline-elastic \
             and/or --fresh-scenarios/--baseline-scenarios"
        );
        std::process::exit(2);
    }
    if failures > 0 {
        eprintln!("\nbench_gate: {failures} metric(s) regressed");
        std::process::exit(1);
    }
    println!("\nbench_gate: all compared metrics within tolerance");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_doc(speedups: &[f64], plan_cache: f64, matmul: f64, abt: f64) -> Json {
        perf_doc_with_flow(speedups, plan_cache, matmul, abt, 27.0, 0.98)
    }

    fn perf_doc_with_flow(
        speedups: &[f64],
        plan_cache: f64,
        matmul: f64,
        abt: f64,
        flow_speedup: f64,
        flow_ratio: f64,
    ) -> Json {
        let rows: Vec<Json> = speedups
            .iter()
            .map(|&s| Json::obj(vec![("speedup", Json::Num(s))]))
            .collect();
        Json::obj(vec![(
            "results",
            Json::obj(vec![
                ("ensf", Json::Arr(rows)),
                ("sqg", Json::obj(vec![("plan_cache_speedup", Json::Num(plan_cache))])),
                (
                    "gemm",
                    Json::obj(vec![
                        ("matmul_gflops", Json::Num(matmul)),
                        ("abt_gflops", Json::Num(abt)),
                    ]),
                ),
                (
                    "flow",
                    Json::obj(vec![
                        ("speedup_at_matched_rmse", Json::Num(flow_speedup)),
                        ("matched_rmse_ratio", Json::Num(flow_ratio)),
                    ]),
                ),
            ]),
        )])
    }

    fn scaling_doc(speedups: &[(i64, f64)]) -> Json {
        let rows: Vec<Json> = speedups
            .iter()
            .map(|&(r, s)| {
                Json::obj(vec![("ranks", Json::Int(r)), ("speedup", Json::Num(s))])
            })
            .collect();
        Json::obj(vec![("results", Json::obj(vec![("strong", Json::Arr(rows))]))])
    }

    fn elastic_doc(rows: &[(&str, f64, f64, f64)]) -> Json {
        let scenarios: Vec<Json> = rows
            .iter()
            .map(|&(name, hit, done, cycles)| {
                Json::obj(vec![
                    ("name", Json::from(name)),
                    ("hit_rate", Json::Num(hit)),
                    ("completed_cycles", Json::Num(done)),
                    ("cycles", Json::Num(cycles)),
                ])
            })
            .collect();
        Json::obj(vec![(
            "results",
            Json::obj(vec![("scenarios", Json::Arr(scenarios))]),
        )])
    }

    /// `(scenario, method, rmse_unobserved, analysis_secs)` rows.
    fn scenario_doc(rows: &[(&str, &str, f64, f64)]) -> Json {
        let scenarios: Vec<Json> = rows
            .iter()
            .map(|&(scenario, method, unobs, secs)| {
                Json::obj(vec![
                    ("scenario", Json::from(scenario)),
                    ("method", Json::from(method)),
                    ("rmse_unobserved", Json::Num(unobs)),
                    ("analysis_secs", Json::Num(secs)),
                ])
            })
            .collect();
        Json::obj(vec![(
            "results",
            Json::obj(vec![("scenarios", Json::Arr(scenarios))]),
        )])
    }

    #[test]
    fn scenario_extractors_scale_against_the_acceptance_targets() {
        let doc = scenario_doc(&[
            ("block25", "ensf_inpaint", 0.0626, 0.02),
            ("block25", "flow_inpaint", 0.1228, 0.02),
            ("block25", "ensf_ignore", 1.0856, 0.018),
            ("block25", "letkf_masked", 0.0065, 0.41),
        ]);
        // 17.3× and 8.8× against the 1.25× target clamp to 1.0; LETKF is
        // 20× slower, so the latency ratio clamps too.
        assert_eq!(scenario_inpaint_advantage(&doc), Some(1.0));
        assert_eq!(scenario_flow_advantage(&doc), Some(1.0));
        assert_eq!(scenario_inpaint_latency(&doc), Some(1.0));
        // A narrow 1.1× win scales below the clamp.
        let narrow = scenario_doc(&[
            ("block25", "ensf_inpaint", 1.0, 0.02),
            ("block25", "ensf_ignore", 1.1, 0.018),
        ]);
        let v = scenario_inpaint_advantage(&narrow).unwrap();
        assert!((v - 1.1 / 1.25).abs() < 1e-12);
        // Missing rows and degenerate values are skips, not failures.
        assert_eq!(scenario_flow_advantage(&narrow), None);
        assert_eq!(scenario_inpaint_advantage(&Json::Null), None);
        let degenerate = scenario_doc(&[
            ("block25", "ensf_inpaint", 0.0, 0.02),
            ("block25", "ensf_ignore", 1.0, 0.018),
        ]);
        assert_eq!(scenario_inpaint_advantage(&degenerate), None);
    }

    #[test]
    fn scenario_advantage_floor_binds_on_the_committed_artifact() {
        let m =
            SCENARIO_METRICS.iter().find(|m| m.name == "scenario.inpaint_advantage").unwrap();
        // A committed baseline that fails the ≥1.25× headline fails the
        // gate outright, even against an identical fresh run.
        let weak = scenario_doc(&[
            ("block25", "ensf_inpaint", 1.0, 0.02),
            ("block25", "ensf_ignore", 1.1, 0.018),
        ]);
        assert!(matches!(judge(m, &weak, &weak), Verdict::BaselineBelowFloor { .. }));
        // A strong baseline with a jittery quick fresh run inside the 50 %
        // tolerance passes; a fresh run that loses the advantage fails.
        let strong = scenario_doc(&[
            ("block25", "ensf_inpaint", 0.06, 0.02),
            ("block25", "ensf_ignore", 1.08, 0.018),
        ]);
        let jittery = scenario_doc(&[
            ("block25", "ensf_inpaint", 1.0, 0.02),
            ("block25", "ensf_ignore", 0.6, 0.018),
        ]);
        assert!(matches!(judge(m, &strong, &strong), Verdict::Ok { .. }));
        assert!(matches!(judge(m, &jittery, &strong), Verdict::Regressed { .. }));
    }

    #[test]
    fn extractors_pull_the_right_numbers() {
        let doc = perf_doc(&[3.2, 2.1, 3.6], 1.4, 13.0, 31.0);
        assert_eq!(ensf_min_speedup(&doc), Some(2.1));
        assert_eq!(sqg_plan_cache_speedup(&doc), Some(1.4));
        assert_eq!(gemm_matmul_gflops(&doc), Some(13.0));
        assert_eq!(gemm_abt_gflops(&doc), Some(31.0));
        let sc = scaling_doc(&[(1, 1.0), (2, 1.9), (4, 3.4)]);
        assert_eq!(strong_speedup_2(&sc), Some(1.9));
        assert_eq!(strong_speedup_4(&sc), Some(3.4));
        assert_eq!(strong_speedup_at(&sc, 16), None, "absent rank row is a skip");
    }

    #[test]
    fn elastic_extractors_pull_scenario_rows() {
        let doc = elastic_doc(&[
            ("clean", 1.0, 10.0, 10.0),
            ("one_kill", 0.97, 10.0, 10.0),
            ("straggler", 0.9, 10.0, 10.0),
        ]);
        assert_eq!(elastic_hit_rate_clean(&doc), Some(1.0));
        assert_eq!(elastic_hit_rate_kill(&doc), Some(0.97));
        assert_eq!(elastic_hit_rate_straggler(&doc), Some(0.9));
        assert_eq!(elastic_kill_completion(&doc), Some(1.0));
        // Absent scenario rows are skips, not failures.
        let partial = elastic_doc(&[("clean", 1.0, 10.0, 10.0)]);
        assert_eq!(elastic_hit_rate_kill(&partial), None);
        assert_eq!(elastic_kill_completion(&partial), None);
    }

    #[test]
    fn kill_hit_rate_gate_encodes_the_acceptance_floor() {
        let m = ELASTIC_METRICS.iter().find(|m| m.name == "elastic.hit_rate_kill").unwrap();
        let base = elastic_doc(&[("one_kill", 1.0, 10.0, 10.0)]);
        let passing = elastic_doc(&[("one_kill", 0.95, 10.0, 10.0)]);
        assert!(matches!(judge(m, &passing, &base), Verdict::Ok { .. }));
        let failing = elastic_doc(&[("one_kill", 0.90, 10.0, 10.0)]);
        assert!(matches!(judge(m, &failing, &base), Verdict::Regressed { .. }));
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let m = &PERF_METRICS[0]; // ensf.min_speedup, tol 0.60
        let base = perf_doc(&[3.0], 1.0, 1.0, 1.0);
        // 40% of baseline is exactly the floor: not a regression.
        let at_floor = perf_doc(&[3.0 * (1.0 - m.tolerance)], 1.0, 1.0, 1.0);
        assert!(matches!(judge(m, &at_floor, &base), Verdict::Ok { .. }));
        let below = perf_doc(&[3.0 * (1.0 - m.tolerance) - 0.01], 1.0, 1.0, 1.0);
        assert!(matches!(judge(m, &below, &base), Verdict::Regressed { .. }));
        let better = perf_doc(&[4.0], 1.0, 1.0, 1.0);
        assert!(matches!(judge(m, &better, &base), Verdict::Ok { .. }));
    }

    #[test]
    fn missing_metrics_are_skipped_not_failed() {
        let m = &SCALING_METRICS[1]; // strong_speedup@4
        let base = scaling_doc(&[(1, 1.0), (2, 1.9)]); // no rank-4 row
        let fresh = scaling_doc(&[(1, 1.0), (2, 1.8), (4, 3.0)]);
        assert_eq!(judge(m, &fresh, &base), Verdict::Skipped);
        // Entirely malformed documents also skip.
        assert_eq!(judge(m, &Json::Null, &fresh), Verdict::Skipped);
    }

    #[test]
    fn gate_suite_counts_failures() {
        let base = perf_doc(&[3.0], 1.5, 10.0, 30.0);
        let bad = perf_doc(&[0.5], 1.4, 9.0, 29.0); // only ensf regresses
        assert_eq!(gate_suite("t", PERF_METRICS, &bad, &base), 1);
        assert_eq!(gate_suite("t", PERF_METRICS, &base, &base), 0);
    }

    #[test]
    fn flow_extractors_scale_against_the_acceptance_targets() {
        // 27.3× against the 5× target clamps to 1.0; 2.6× scales to 0.52.
        let strong = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 27.3, 0.978);
        assert_eq!(flow_speedup_at_matched_rmse(&strong), Some(1.0));
        assert_eq!(flow_matched_rmse_ratio(&strong), Some(1.0));
        let weak = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 2.6, 1.2);
        assert_eq!(flow_speedup_at_matched_rmse(&weak), Some(2.6 / 5.0));
        let ratio = flow_matched_rmse_ratio(&weak).unwrap();
        assert!((ratio - 1.1 / 1.2).abs() < 1e-12);
        // Degenerate / absent values are skips, not failures.
        let degenerate = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 5.0, 0.0);
        assert_eq!(flow_matched_rmse_ratio(&degenerate), None);
        assert_eq!(flow_speedup_at_matched_rmse(&Json::Null), None);
    }

    #[test]
    fn plan_cache_speedup_clamps_machine_noise() {
        let doc = perf_doc(&[3.0], 18.6, 10.0, 30.0);
        assert_eq!(sqg_plan_cache_speedup(&doc), Some(10.0));
        let modest = perf_doc(&[3.0], 4.2, 10.0, 30.0);
        assert_eq!(sqg_plan_cache_speedup(&modest), Some(4.2));
    }

    #[test]
    fn flow_baseline_floor_binds_on_the_committed_artifact() {
        let m = PERF_METRICS
            .iter()
            .find(|m| m.name == "flow.speedup_at_matched_rmse")
            .unwrap();
        // Committed baseline below 5×: the gate fails even when the fresh
        // run matches it exactly — the headline is absolute, not relative.
        let weak_base = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 4.0, 0.98);
        assert!(matches!(
            judge(m, &weak_base, &weak_base),
            Verdict::BaselineBelowFloor { .. }
        ));
        // Committed baseline at 27× with a jittery quick fresh run at 2.6×:
        // scaled 0.52 against floor 1.0·(1−0.60) = 0.40 — passes.
        let base = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 27.3, 0.978);
        let fresh = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 2.6, 1.05);
        assert!(matches!(judge(m, &fresh, &base), Verdict::Ok { .. }));
        // But a fresh run whose scaled speedup collapses below the floor fails.
        let dead = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 1.5, 1.05);
        assert!(matches!(judge(m, &dead, &base), Verdict::Regressed { .. }));
    }

    #[test]
    fn flow_rmse_corridor_floor_rejects_inaccurate_baselines() {
        let m = PERF_METRICS
            .iter()
            .find(|m| m.name == "flow.matched_rmse_ratio")
            .unwrap();
        // Ratio 1.2 > 1.1: scaled 0.917 < 1.0 floor → the baseline itself
        // fails the accuracy corridor.
        let off = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 27.3, 1.2);
        assert!(matches!(
            judge(m, &off, &off),
            Verdict::BaselineBelowFloor { .. }
        ));
        let good = perf_doc_with_flow(&[3.0], 1.5, 10.0, 30.0, 27.3, 0.978);
        assert!(matches!(judge(m, &good, &good), Verdict::Ok { .. }));
    }
}
