//! EnSF with highly nonlinear observations on Lorenz-96.
//!
//! The paper's EnSF claims rest on demonstrations (its refs [24], [25])
//! that the score filter tracks high-dimensional chaotic systems observed
//! through strongly nonlinear operators — the regime where Kalman-type
//! updates break. This binary reproduces that demonstration: Lorenz-96
//! (dim 40, F = 8) observed through componentwise `arctan`, EnSF vs a free
//! run, with an identity-observation EnSF as the linear reference.

use da_core::{ForecastModel, Lorenz96, Lorenz96Params};
use ensf::{ArctanObs, Ensf, EnsfConfig, IdentityObs, ObservationOperator};
use stats::gaussian::standard_normal;
use stats::rng::{member_rng, seeded};
use stats::{metrics, Ensemble};

const DIM: usize = 40;
const MEMBERS: usize = 30;
const CYCLES: usize = 120;
const OBS_SIGMA: f64 = 0.05;
/// Observation cadence [h]: 1.5 h = 0.0125 MTU, the frequent-observation
/// regime of the EnSF references (with saturating observations the filter
/// must re-anchor each component before it drifts out of arctan's
/// sensitive range).
const CYCLE_HOURS: f64 = 1.5;
/// Spread relaxation: 0.9 (the ablation's optimum in this regime; full
/// relaxation lets diffusion samples stray off the L96 attractor basin,
/// which diverges in finite time).
const RELAX: f64 = 0.9;

fn initial_ensemble(truth: &[f64], seed: u64) -> Ensemble {
    let mut ens = Ensemble::zeros(MEMBERS, DIM);
    for m in 0..MEMBERS {
        let mut rng = member_rng(seed, m);
        for (x, t) in ens.member_mut(m).iter_mut().zip(truth) {
            *x = t + 1.0 * standard_normal(&mut rng);
        }
    }
    ens
}

/// Runs a cycling experiment; `analyze` maps (ensemble, truth, rng-stream
/// cycle) to the analysis ensemble.
fn cycle<F>(label: &str, seed: u64, mut analyze: F) -> Vec<f64>
where
    F: FnMut(&Ensemble, &[f64], usize) -> Ensemble,
{
    let mut nature = Lorenz96::new(Lorenz96Params::default());
    let mut truth = nature.spinup(seed, 20.0);
    let mut model = Lorenz96::new(Lorenz96Params::default());
    let mut ens = initial_ensemble(&truth, seed ^ 0xABC);
    let mut series = Vec::with_capacity(CYCLES);
    for c in 0..CYCLES {
        nature.forecast(&mut truth, CYCLE_HOURS);
        model.forecast_ensemble(&mut ens, CYCLE_HOURS);
        ens = analyze(&ens, &truth, c);
        series.push(metrics::rmse(&ens.mean(), &truth));
    }
    let _ = label;
    series
}

fn main() {
    bench::header(
        "Nonlinear observations",
        "EnSF on Lorenz-96 observed through arctan (refs [24], [25])",
    );

    let seed = 42u64;

    // Free run (no DA).
    let free = cycle("free", seed, |ens, _truth, _c| ens.clone());

    // EnSF with componentwise arctan observations.
    let arctan_op = ArctanObs::new(DIM, OBS_SIGMA);
    let mut obs_rng = seeded(seed ^ 0x0B5);
    let mut filter_nl = Ensf::new(EnsfConfig {
        n_steps: 40,
        seed: 1,
        spread_relaxation: RELAX,
        ..Default::default()
    });
    let nonlinear = cycle("ensf-arctan", seed, |ens, truth, _c| {
        let mut y = vec![0.0; DIM];
        arctan_op.apply(truth, &mut y);
        for v in y.iter_mut() {
            *v += OBS_SIGMA * standard_normal(&mut obs_rng);
        }
        filter_nl.analyze(ens, &y, &arctan_op)
    });

    // EnSF with identity observations (linear reference).
    let id_op = IdentityObs::new(DIM, OBS_SIGMA);
    let mut obs_rng2 = seeded(seed ^ 0x0B5);
    let mut filter_id = Ensf::new(EnsfConfig {
        n_steps: 40,
        seed: 2,
        spread_relaxation: RELAX,
        ..Default::default()
    });
    let linear = cycle("ensf-identity", seed, |ens, truth, _c| {
        let y: Vec<f64> = truth
            .iter()
            .map(|t| t + OBS_SIGMA * standard_normal(&mut obs_rng2))
            .collect();
        filter_id.analyze(ens, &y, &id_op)
    });

    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "cycle", "free run", "EnSF arctan", "EnSF identity"
    );
    for c in (0..CYCLES).step_by(10) {
        println!(
            "{:>6} {:>12.4} {:>14.4} {:>14.4}",
            c + 1,
            free[c],
            nonlinear[c],
            linear[c]
        );
    }

    let tail = |s: &[f64]| s[CYCLES / 2..].iter().sum::<f64>() / (CYCLES / 2) as f64;
    println!("\nsteady RMSE: free {:.3} | EnSF arctan {:.3} | EnSF identity {:.3}", tail(&free), tail(&nonlinear), tail(&linear));
    println!("(L96 climatological sd ~ 3.6)");
    println!("\nshape: the free run drifts toward climatology; EnSF with arctan");
    println!("observations — whose Jacobian vanishes for large |x| — holds the");
    println!("error well below the free run; identity observations of the same");
    println!("precision recover near-perfect tracking (the Kalman-friendly case).");
}
