//! Scaling study of the state-sharded distributed EnSF analysis.
//!
//! Measures the `crates/dist` sharded analysis at 1/2/4/8/16 simulated
//! ranks with the sequential per-rank-timed driver
//! ([`dist::measure_analysis`]): every rank's compute is timed in
//! isolation on this machine's single core, the analysis wall time is the
//! slowest rank's compute, and the allgather exchanges are priced with the
//! α–β collective model so compute and communication stay separate in the
//! report.
//!
//! * **Strong scaling** — paper-scale analysis (`P = 20`, `d = 8192`,
//!   tile 64, 100 reverse-SDE steps) split over more ranks: wall time
//!   should drop near-linearly until per-rank tiles run out.
//! * **Weak scaling** — `d = 1024` per rank: wall time should stay flat.
//!
//! The numerics are rank-count invariant (bitwise — see
//! `tests/dist_determinism.rs`), so every row of the study computes the
//! *same* analysis, just decomposed differently.
//!
//! Writes a machine-readable report to `BENCH_scaling.json` (override with
//! `--out <path>`); `--quick` shrinks shapes and repetitions for CI.
//!
//! Run: `cargo run --release -p bench --bin scaling_suite`

use bench::{bar, header, Json};
use dist::{measure_analysis, ScalingMeasurement};
use ensf::EnsfConfig;

/// Runs `reps` measurements and keeps the one with the median wall time.
fn median_measurement(
    dim: usize,
    tile: usize,
    members: usize,
    config: &EnsfConfig,
    ranks: usize,
    reps: usize,
) -> ScalingMeasurement {
    let mut runs: Vec<ScalingMeasurement> = (0..reps)
        .map(|_| measure_analysis(dim, tile, members, config, ranks, 7))
        .collect();
    runs.sort_by(|a, b| a.analysis_secs.partial_cmp(&b.analysis_secs).unwrap());
    runs.swap_remove(runs.len() / 2)
}

fn measurement_json(m: &ScalingMeasurement, speedup: f64) -> Json {
    Json::obj(vec![
        ("ranks", Json::from(m.ranks as u64)),
        ("dim", Json::from(m.dim as u64)),
        ("members", Json::from(m.members as u64)),
        ("analysis_secs", Json::Num(m.analysis_secs)),
        ("total_cpu_secs", Json::Num(m.total_cpu_secs)),
        ("modeled_comm_secs", Json::Num(m.modeled_comm_secs)),
        ("speedup", Json::Num(speedup)),
        ("collectives", Json::from(m.stats.collectives)),
        ("exchanged_bytes", Json::from(m.stats.bytes)),
    ])
}

fn strong_scaling(
    dim: usize,
    tile: usize,
    members: usize,
    config: &EnsfConfig,
    rank_counts: &[usize],
    reps: usize,
) -> Json {
    println!("strong scaling: P = {members}, d = {dim}, tile {tile}, {} SDE steps", config.n_steps);
    println!(
        "{:>6} {:>12} {:>9} {:>11} {:>12}",
        "ranks", "analysis", "speedup", "comm", ""
    );
    let mut t1 = 0.0f64;
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        let m = median_measurement(dim, tile, members, config, ranks, reps);
        if ranks == rank_counts[0] {
            t1 = m.analysis_secs;
        }
        let speedup = t1 / m.analysis_secs;
        println!(
            "{:>6} {:>11.4}s {:>8.2}x {:>10.4}s {}",
            ranks,
            m.analysis_secs,
            speedup,
            m.modeled_comm_secs,
            bar(speedup / rank_counts.last().copied().unwrap_or(1) as f64, 24),
        );
        rows.push(measurement_json(&m, speedup));
    }
    Json::Arr(rows)
}

fn weak_scaling(
    dim_per_rank: usize,
    tile: usize,
    members: usize,
    config: &EnsfConfig,
    rank_counts: &[usize],
    reps: usize,
) -> Json {
    println!("\nweak scaling: P = {members}, d = {dim_per_rank} per rank, tile {tile}");
    println!("{:>6} {:>9} {:>12} {:>11} {:>11}", "ranks", "dim", "analysis", "comm", "eff");
    let mut t1 = 0.0f64;
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        let m = median_measurement(dim_per_rank * ranks, tile, members, config, ranks, reps);
        if ranks == rank_counts[0] {
            t1 = m.analysis_secs;
        }
        // Weak-scaling efficiency: flat wall time is 1.0.
        let eff = t1 / m.analysis_secs;
        println!(
            "{:>6} {:>9} {:>11.4}s {:>10.4}s {:>10.2}",
            ranks, m.dim, m.analysis_secs, m.modeled_comm_secs, eff
        );
        rows.push(measurement_json(&m, eff));
    }
    Json::Arr(rows)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());

    header("scaling_suite", "State-sharded distributed EnSF analysis scaling study");
    println!("sequential per-rank timing on one core; comm priced by the α–β model\n");

    let (dim, tile, members, n_steps, dim_per_rank, reps): (usize, usize, usize, usize, usize, usize) =
        if quick { (512, 64, 8, 5, 256, 1) } else { (8192, 64, 20, 100, 1024, 3) };
    let rank_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let config = EnsfConfig { n_steps, seed: 9, ..Default::default() };

    let strong = strong_scaling(dim, tile, members, &config, rank_counts, reps);
    let weak = weak_scaling(dim_per_rank, tile, members, &config, rank_counts, reps);

    println!("\nthe decomposition is bitwise rank-count invariant, so every row");
    println!("computes the same analysis (tests/dist_determinism.rs proves it).");

    let payload = Json::obj(vec![
        ("id", Json::from("scaling_suite")),
        ("quick", Json::Bool(quick)),
        ("reps", Json::from(reps as u64)),
        (
            "results",
            Json::obj(vec![
                ("strong", strong),
                ("weak", weak),
                ("tile", Json::from(tile as u64)),
                ("n_steps", Json::from(n_steps as u64)),
            ]),
        ),
    ]);
    telemetry::report::write_json(std::path::Path::new(&out), &payload)
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("scaling report written to {out}");
}
