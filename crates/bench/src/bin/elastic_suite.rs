//! Elastic fault-tolerance study: deadline hit-rate of the sharded DA
//! cycling runtime under injected rank kills, rejoins and stragglers.
//!
//! Each scenario runs the full elastic OSSE loop (`dist::elastic`) on the
//! simulated MPI world with a per-cycle deadline budget of **3× the
//! modeled clean analysis time** and reports the deadline hit-rate
//! (cycles that produced a full or degraded analysis within budget over
//! cycles run), the recovery counters, and the final assimilation error:
//!
//! * `clean` — no faults: the hit-rate floor of the harness itself.
//! * `one_kill` — one rank killed mid-analysis at cycle 3: the group
//!   shrinks, the cycle is redone, cycling continues at the survivor
//!   count. The headline number: the hit-rate must stay ≥ 0.95.
//! * `kill_rejoin` — the killed rank rejoins from a checkpoint two cycles
//!   later, restoring the full group.
//! * `straggler` — an 8× straggler for three mid-run cycles: the deadline
//!   ladder degrades those analyses instead of missing the budget.
//!
//! Writes a machine-readable report to `BENCH_elastic.json` (override
//! with `--out <path>`); `--quick` shrinks the grid for CI. The derived
//! ratios are gated by `bench_gate` via `--fresh-elastic` /
//! `--baseline-elastic`.
//!
//! Run: `cargo run --release -p bench --bin elastic_suite`

use bench::{header, Json};
use da_core::osse::OsseConfig;
use da_core::resilience::{CheckpointConfig, RankKill, RankRejoin};
use dist::{
    modeled_analysis_secs, run_elastic_osse, CommSpec, DeadlinePolicy, DistCycleConfig,
    ElasticCycleConfig, ElasticOutcome, ElasticRunResult,
};
use ensf::EnsfConfig;
use hpc::{Straggler, StragglerPlan};
use sqg::SqgParams;

/// Cycle during whose analysis the scripted kill lands.
const KILL_CYCLE: usize = 3;

/// The grid/ensemble shape of one study.
struct Shape {
    n: usize,
    members: usize,
    n_steps: usize,
    cycles: usize,
    ranks: usize,
}

fn base_config(shape: &Shape) -> DistCycleConfig {
    DistCycleConfig {
        osse: OsseConfig {
            params: SqgParams { n: shape.n, ..Default::default() },
            cycles: shape.cycles,
            obs_sigma: 0.005,
            ens_size: shape.members,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        },
        ensf: EnsfConfig { n_steps: shape.n_steps, seed: 5, ..Default::default() },
        comm: Some(CommSpec::clean(shape.ranks)),
        ..Default::default()
    }
}

/// An elastic config with the standard deadline policy: budget 3× the
/// modeled clean full analysis, degraded rung at 1/3 of the SDE steps.
fn elastic_config(shape: &Shape) -> ElasticCycleConfig {
    let base = base_config(shape);
    let dim = base.osse.params.state_dim();
    let full = modeled_analysis_secs(&base, dim, shape.members, shape.n_steps, shape.ranks);
    let mut config = ElasticCycleConfig::clean(base);
    config.deadline = Some(DeadlinePolicy {
        budget_secs: 3.0 * full,
        degraded_steps: (shape.n_steps / 3).max(1),
    });
    config
}

fn hit_rate(r: &ElasticRunResult) -> f64 {
    if r.deadline_total == 0 {
        return 1.0;
    }
    r.deadline_hits as f64 / r.deadline_total as f64
}

fn scenario_json(name: &str, shape: &Shape, r: &ElasticRunResult) -> Json {
    Json::obj(vec![
        ("name", Json::from(name)),
        ("ranks", Json::from(shape.ranks as u64)),
        ("cycles", Json::from(shape.cycles as u64)),
        ("completed_cycles", Json::from(r.deadline_total as u64)),
        ("hit_rate", Json::Num(hit_rate(r))),
        ("shrinks", Json::from(r.counters.shrinks)),
        ("rejoins", Json::from(r.counters.rejoins)),
        ("redone_analyses", Json::from(r.counters.redone_analyses)),
        ("degraded_cycles", Json::from(r.counters.degraded_cycles)),
        ("forecast_only_cycles", Json::from(r.counters.forecast_only_cycles)),
        ("deadline_blown", Json::from(r.counters.deadline_blown)),
        ("final_group_size", Json::from(r.group_sizes.last().map_or(0, |&(_, g)| g as u64))),
        ("final_rmse", Json::Num(r.series.rmse.last().copied().unwrap_or(f64::NAN))),
    ])
}

fn report_row(name: &str, r: &ElasticRunResult) {
    println!(
        "{:>12} {:>9.3} {:>8} {:>8} {:>9} {:>10} {:>7} {:>10.5}",
        name,
        hit_rate(r),
        r.counters.shrinks,
        r.counters.rejoins,
        r.counters.degraded_cycles,
        r.counters.forecast_only_cycles,
        r.counters.deadline_blown,
        r.series.rmse.last().copied().unwrap_or(f64::NAN),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_elastic.json".to_string());

    header("elastic_suite", "Elastic DA cycling under rank kills, rejoins and stragglers");
    let shape = if quick {
        Shape { n: 16, members: 8, n_steps: 10, cycles: 10, ranks: 8 }
    } else {
        Shape { n: 32, members: 16, n_steps: 50, cycles: 10, ranks: 8 }
    };
    let dim = shape.n * shape.n * 2;
    println!(
        "d = {dim}, P = {}, {} SDE steps, {} cycles at {} ranks; budget 3× modeled clean\n",
        shape.members, shape.n_steps, shape.cycles, shape.ranks
    );
    println!(
        "{:>12} {:>9} {:>8} {:>8} {:>9} {:>10} {:>7} {:>10}",
        "scenario", "hit-rate", "shrinks", "rejoins", "degraded", "fcst-only", "blown", "rmse"
    );

    let victim = shape.ranks - 1;
    let mid_kill =
        RankKill { cycle: KILL_CYCLE, rank: victim, after_steps: shape.n_steps / 2 };

    let clean_cfg = elastic_config(&shape);
    let clean = run_elastic_osse(&clean_cfg, shape.ranks).expect("clean scenario");
    report_row("clean", &clean);

    let mut kill_cfg = elastic_config(&shape);
    kill_cfg.faults.rank_kills.push(mid_kill);
    let one_kill = run_elastic_osse(&kill_cfg, shape.ranks).expect("one_kill scenario");
    report_row("one_kill", &one_kill);
    assert_eq!(one_kill.outcome, ElasticOutcome::Completed);
    assert_eq!(one_kill.counters.shrinks, 1, "the injected kill must shrink the group");

    let ckpt = std::env::temp_dir()
        .join(format!("sqg_da_elastic_suite_{}.ckpt", std::process::id()));
    let mut rejoin_cfg = elastic_config(&shape);
    rejoin_cfg.faults.rank_kills.push(mid_kill);
    rejoin_cfg.faults.rank_rejoins.push(RankRejoin { cycle: KILL_CYCLE + 2, rank: victim });
    rejoin_cfg.checkpoint = Some(CheckpointConfig { path: ckpt.clone(), every: 0 });
    let kill_rejoin = run_elastic_osse(&rejoin_cfg, shape.ranks).expect("kill_rejoin scenario");
    std::fs::remove_file(&ckpt).ok();
    report_row("kill_rejoin", &kill_rejoin);
    assert_eq!(kill_rejoin.counters.rejoins, 1, "the scripted rejoin must land");

    let mut straggler_cfg = elastic_config(&shape);
    straggler_cfg.stragglers = StragglerPlan {
        events: vec![Straggler {
            rank: 1,
            from_cycle: KILL_CYCLE,
            to_cycle: KILL_CYCLE + 2,
            slowdown: 8.0,
        }],
    };
    let straggler = run_elastic_osse(&straggler_cfg, shape.ranks).expect("straggler scenario");
    report_row("straggler", &straggler);

    println!(
        "\nheadline: one injected kill keeps the deadline hit-rate at {:.3} (gate: ≥ 0.95)",
        hit_rate(&one_kill)
    );

    let scenarios = vec![
        scenario_json("clean", &shape, &clean),
        scenario_json("one_kill", &shape, &one_kill),
        scenario_json("kill_rejoin", &shape, &kill_rejoin),
        scenario_json("straggler", &shape, &straggler),
    ];
    let payload = Json::obj(vec![
        ("id", Json::from("elastic_suite")),
        ("quick", Json::Bool(quick)),
        (
            "results",
            Json::obj(vec![
                ("dim", Json::from(dim as u64)),
                ("ranks", Json::from(shape.ranks as u64)),
                ("cycles", Json::from(shape.cycles as u64)),
                ("scenarios", Json::Arr(scenarios)),
            ]),
        ),
    ]);
    telemetry::report::write_json(std::path::Path::new(&out), &payload)
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("elastic report written to {out}");
}
