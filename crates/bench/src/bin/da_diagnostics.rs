//! Assimilation-diagnostics report: EnSF vs flow-matching EnSF vs LETKF
//! filter calibration on the reduced SQG OSSE.
//!
//! Runs the analysis schemes over the same nature run with telemetry
//! on, then aggregates the per-cycle [`telemetry::DaDiagnostics`] into the
//! classic filter-health pictures: the ensemble **rank histogram** (flat ⇒
//! calibrated, U-shaped ⇒ underdispersive, dome ⇒ overdispersive), the
//! **spread–skill ratio** trace (≈ 1 for a calibrated ensemble), and the
//! **chi-squared** innovation-consistency trace (≈ 1 when innovations
//! match the filter's own uncertainty budget). These are the plots behind
//! the EXPERIMENTS.md entry.
//!
//! Run: `cargo run --release -p bench --bin da_diagnostics --
//! [--cycles N] [--quick] [--json PATH]`

use bench::{bar, header, Json};
use da_core::osse::{nature_run, run_experiment, OsseConfig};
use da_core::{EnsfScheme, FlowMatchingEnsfScheme, LetkfScheme, SqgForecast};
use sqg::SqgParams;
use telemetry::CycleRecord;

struct Aggregate {
    label: String,
    rank_hist: Vec<u64>,
    spread_skill: Vec<f64>,
    chi2: Vec<f64>,
    hours: Vec<f64>,
}

/// Folds one experiment's cycle records into histogram + traces.
fn aggregate(label: &str, records: &[CycleRecord]) -> Aggregate {
    let mut agg = Aggregate {
        label: label.to_string(),
        rank_hist: Vec::new(),
        spread_skill: Vec::new(),
        chi2: Vec::new(),
        hours: Vec::new(),
    };
    for r in records.iter().filter(|r| r.label == label) {
        let Some(d) = &r.diagnostics else { continue };
        if agg.rank_hist.len() < d.rank_hist.len() {
            agg.rank_hist.resize(d.rank_hist.len(), 0);
        }
        for (acc, &c) in agg.rank_hist.iter_mut().zip(&d.rank_hist) {
            *acc += c;
        }
        agg.spread_skill.push(d.spread_skill);
        agg.chi2.push(d.chi2);
        agg.hours.push(r.hours);
    }
    agg
}

fn steady_mean(series: &[f64]) -> f64 {
    let tail = &series[series.len() / 2..];
    if tail.is_empty() {
        return 0.0;
    }
    tail.iter().sum::<f64>() / tail.len() as f64
}

fn print_aggregate(agg: &Aggregate) {
    println!("\n{} rank histogram ({} samples over {} cycles):", agg.label, agg.rank_hist.iter().sum::<u64>(), agg.hours.len());
    let peak = agg.rank_hist.iter().copied().max().unwrap_or(1).max(1) as f64;
    for (bin, &count) in agg.rank_hist.iter().enumerate() {
        println!("  rank {bin:>2} {:>7} {}", count, bar(count as f64 / peak, 40));
    }
    println!(
        "{} steady spread–skill {:.3}, steady chi² {:.3}",
        agg.label,
        steady_mean(&agg.spread_skill),
        steady_mean(&agg.chi2)
    );
}

fn aggregate_json(agg: &Aggregate) -> Json {
    Json::obj(vec![
        ("label", Json::from(agg.label.as_str())),
        (
            "rank_hist",
            Json::Arr(agg.rank_hist.iter().map(|&c| Json::from(c)).collect()),
        ),
        ("hours", Json::Arr(agg.hours.iter().map(|&h| Json::Num(h)).collect())),
        (
            "spread_skill",
            Json::Arr(agg.spread_skill.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("chi2", Json::Arr(agg.chi2.iter().map(|&v| Json::Num(v)).collect())),
        ("steady_spread_skill", Json::Num(steady_mean(&agg.spread_skill))),
        ("steady_chi2", Json::Num(steady_mean(&agg.chi2))),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cycles = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 10 } else { 40 });

    header("da_diagnostics", "EnSF vs FlowEnSF vs LETKF filter calibration on the reduced SQG OSSE");
    // The diagnostics *are* the product here, so collection is always on.
    telemetry::set_enabled(true);
    telemetry::reset();

    let config = OsseConfig {
        params: SqgParams { n: 16, ekman: 0.05, ..Default::default() },
        cycles,
        obs_sigma: 0.005,
        ens_size: 16,
        ic_sigma: 0.01,
        spinup_steps: if quick { 60 } else { 200 },
        seed: 2024,
        ..Default::default()
    };
    let nature = nature_run(&config);
    let dim = nature.truth[0].len();
    println!(
        "OSSE: n = {}, d = {dim}, {} members, {cycles} cycles, σ_obs = {}\n",
        config.params.n, config.ens_size, config.obs_sigma
    );

    let mut model = SqgForecast::perfect(config.params.clone());
    let mut ensf = EnsfScheme::new(
        ensf::EnsfConfig { n_steps: 20, seed: config.seed ^ 0xE45F, ..Default::default() },
        dim,
        config.obs_sigma,
    );
    let ensf_series =
        run_experiment("EnSF", &config, &nature, &mut model, &mut ensf).expect("EnSF run failed");

    // The flow-matching path runs the same score machinery through a 6-step
    // deterministic probability-flow ODE. Spread relaxation is backed off
    // and the per-component variance estimate is shrunk toward its mean so
    // the deterministic transport stays calibrated at 16 members (see
    // EXPERIMENTS.md: under full RTPS the reduced-grid forecast spread
    // runs away and the deterministic path has no obs noise to hide it).
    let mut model_flow = SqgForecast::perfect(config.params.clone());
    let mut flow = FlowMatchingEnsfScheme::new(
        ensf::EnsfConfig {
            n_steps: 6,
            seed: config.seed ^ 0xE45F,
            spread_relaxation: 0.25,
            variance_smoothing: 1.0,
            ..Default::default()
        },
        dim,
        config.obs_sigma,
    );
    let flow_series = run_experiment("FlowEnSF", &config, &nature, &mut model_flow, &mut flow)
        .expect("FlowEnSF run failed");

    let mut model2 = SqgForecast::perfect(config.params.clone());
    let mut letkf = LetkfScheme::new(letkf::LetkfConfig::default(), &config.params, config.obs_sigma);
    let letkf_series = run_experiment("LETKF", &config, &nature, &mut model2, &mut letkf)
        .expect("LETKF run failed");

    let records = telemetry::cycle_records();
    let aggs = [
        aggregate("EnSF", &records),
        aggregate("FlowEnSF", &records),
        aggregate("LETKF", &records),
    ];
    for agg in &aggs {
        assert_eq!(agg.hours.len(), cycles, "{}: every cycle must carry diagnostics", agg.label);
        print_aggregate(agg);
    }
    println!(
        "\nsteady RMSE: EnSF {:.5}, FlowEnSF {:.5}, LETKF {:.5} (climatology SD {:.5})",
        ensf_series.steady_rmse(),
        flow_series.steady_rmse(),
        letkf_series.steady_rmse(),
        nature.climatology_sd
    );
    println!("reading: a flat histogram and spread–skill ≈ 1 mean the ensemble's");
    println!("uncertainty is honest; U-shape / ratio ≪ 1 flag overconfidence.");

    bench::emit_json(
        "da_diagnostics",
        "EnSF vs FlowEnSF vs LETKF filter calibration on the reduced SQG OSSE",
        Json::obj(vec![
            ("cycles", Json::from(cycles)),
            ("climatology_sd", Json::Num(nature.climatology_sd)),
            ("ensf_steady_rmse", Json::Num(ensf_series.steady_rmse())),
            ("flow_steady_rmse", Json::Num(flow_series.steady_rmse())),
            ("letkf_steady_rmse", Json::Num(letkf_series.steady_rmse())),
            ("schemes", Json::Arr(aggs.iter().map(aggregate_json).collect())),
        ]),
    );
}
