//! Fig. 9: scaling the ViT surrogate to 1024 GCDs under DDP, DeepSpeed
//! ZeRO stages 1/2 and FSDP full/grad_op, including the ZeRO bucket-size
//! study for the 256² model.

use bench::Json;
use hpc::{scaling_curve, Strategy, Topology, TrainJob};

const MB: u64 = 1024 * 1024;

fn print_curve(label: &str, curve: &[(usize, f64, f64)]) {
    print!("{label:>24}:");
    for (g, tp, eff) in curve {
        print!("  {g:>4}: {tp:>7.1} samp/s ({:>5.1}%)", eff * 100.0);
    }
    println!();
}

fn main() {
    bench::header("Fig. 9", "ViT strong scaling on Frontier (to 1024 GCDs)");

    let gcds = [8usize, 64, 256, 1024];

    let mut curves = Vec::new();
    for size in [64usize, 128, 256] {
        let job = TrainJob::table2(size);
        println!("\ninput {size}² ({:.2}B params):", job.params as f64 / 1e9);
        for (strategy, bucket) in [
            (Strategy::Ddp, 120 * MB),
            (Strategy::ZeroStage1, 200 * MB),
            (Strategy::ZeroStage2, 200 * MB),
            (Strategy::FsdpShardGradOp, 200 * MB),
            (Strategy::FsdpFullShard, 200 * MB),
        ] {
            let curve = scaling_curve(Topology::frontier, &job, strategy, &gcds, bucket);
            print_curve(&format!("{strategy:?}"), &curve);
            let points = curve
                .iter()
                .map(|&(g, tp, eff)| {
                    Json::obj(vec![
                        ("gcds", Json::from(g)),
                        ("samples_per_sec", Json::Num(tp)),
                        ("efficiency", Json::Num(eff)),
                    ])
                })
                .collect();
            curves.push(Json::obj(vec![
                ("input", Json::from(size)),
                ("strategy", Json::from(format!("{strategy:?}"))),
                ("bucket_bytes", Json::from(bucket)),
                ("points", Json::Arr(points)),
            ]));
        }
    }

    println!("\nZeRO stage-1 bucket-size study for 256² (the paper's tuning):");
    let job = TrainJob::table2(256);
    let mut buckets = Vec::new();
    for bucket_mb in [100u64, 200, 350, 500, 800, 1600] {
        let curve =
            scaling_curve(Topology::frontier, &job, Strategy::ZeroStage1, &gcds, bucket_mb * MB);
        let (_g, tp, eff) = curve.last().unwrap();
        println!(
            "  bucket {:>5}: {tp:>7.1} samp/s at 1024 GCDs ({:>5.1}%) {}",
            bench::human_bytes(bucket_mb * MB),
            eff * 100.0,
            bench::bar(*eff, 30)
        );
        buckets.push(Json::obj(vec![
            ("bucket_bytes", Json::from(bucket_mb * MB)),
            ("samples_per_sec", Json::Num(*tp)),
            ("efficiency", Json::Num(*eff)),
        ]));
    }

    println!("\npaper shape: 128² scales best (~86%); the default 200 MiB bucket");
    println!("suffers from the AllReduce dip; ~500 MiB is optimal; tunable ZeRO");
    println!("beats FSDP for the 2.5B model.");

    bench::emit_json(
        "fig9",
        "ViT strong scaling on Frontier (to 1024 GCDs)",
        Json::obj(vec![
            ("curves", Json::Arr(curves)),
            ("bucket_study_256", Json::Arr(buckets)),
        ]),
    );
}
