//! Cross-rank trace timeline of the distributed EnSF analysis.
//!
//! Runs the traced sequential driver ([`dist::trace_timeline`]) over a few
//! assimilation cycles and writes one JSON document that is simultaneously
//! a valid Chrome trace-event file (top-level `traceEvents`; load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>) and a structured
//! report: a per-cycle comm-vs-compute breakdown with critical-path
//! summary under `summary`, and — when `--baseline <BENCH_scaling.json>`
//! is given — a `reconciliation` block proving the timeline's modeled
//! comm seconds, collective counts, and byte counts equal the scaling
//! suite's for the same shape. Comm pricing is a pure α–β function of the
//! shape, so those checks are exact; measured compute is compared loosely
//! (warn only).
//!
//! Defaults trace the paper-scale shape (`d = 8192`, `P = 20`, 100 SDE
//! steps) at 4 ranks, matching the committed `BENCH_scaling.json` strong
//! row; `--quick` shrinks to the CI shape (`d = 512`, `P = 8`, 5 steps)
//! matching `BENCH_scaling_quick.json`.
//!
//! Run: `cargo run --release -p bench --bin trace_report -- [--quick]
//! [--ranks N] [--cycles N] [--out PATH] [--baseline BENCH_scaling.json]`

use bench::{header, Json};
use dist::{trace_timeline, TimelineResult, TimelineSpec};
use ensf::EnsfConfig;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Relative mismatch of two comm quantities (0 when both are 0).
fn rel_err(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// One exact reconciliation check: timeline value vs baseline value.
struct Check {
    name: &'static str,
    trace: f64,
    baseline: f64,
    ok: bool,
}

fn reconcile(result: &TimelineResult, spec: &TimelineSpec, baseline: &Json) -> (Vec<Check>, Json) {
    // Pick the strong-scaling row at our rank count.
    let rows = baseline
        .get("results")
        .and_then(|r| r.get("strong"))
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("baseline has no results.strong array"));
    let row = rows
        .iter()
        .find(|r| r.get("ranks").and_then(Json::as_i64) == Some(spec.ranks as i64))
        .unwrap_or_else(|| panic!("baseline has no strong row at {} ranks", spec.ranks));
    let field = |k: &str| {
        row.get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("baseline strong row missing {k}"))
    };
    let base_dim = field("dim") as usize;
    let base_members = field("members") as usize;
    assert_eq!(
        (base_dim, base_members),
        (spec.dim, spec.members),
        "baseline shape (d = {base_dim}, P = {base_members}) does not match the traced \
         shape (d = {}, P = {}); pass matching --quick / full modes",
        spec.dim,
        spec.members
    );

    // Every cycle runs one analysis of the baseline's shape, so the
    // per-cycle analysis quantities must equal the baseline row's.
    let cycles = result.breakdown.len() as f64;
    let comm_per_cycle: f64 =
        result.breakdown.iter().map(|b| b.analysis_comm_secs).sum::<f64>() / cycles;
    let coll_per_cycle: f64 =
        result.breakdown.iter().map(|b| b.analysis_collectives as f64).sum::<f64>() / cycles;
    let bytes_per_cycle: f64 =
        result.breakdown.iter().map(|b| b.analysis_bytes as f64).sum::<f64>() / cycles;

    let exact = 1e-9; // modeled comm is a pure function of the shape
    let checks = vec![
        Check {
            name: "collectives_per_analysis",
            trace: coll_per_cycle,
            baseline: field("collectives"),
            ok: coll_per_cycle == field("collectives"),
        },
        Check {
            name: "bytes_per_analysis",
            trace: bytes_per_cycle,
            baseline: field("exchanged_bytes"),
            ok: bytes_per_cycle == field("exchanged_bytes"),
        },
        Check {
            name: "modeled_comm_secs_per_analysis",
            trace: comm_per_cycle,
            baseline: field("modeled_comm_secs"),
            ok: rel_err(comm_per_cycle, field("modeled_comm_secs")) < exact,
        },
    ];

    // Compute is measured, not modeled: same code path, different run, so
    // only warn on large drift.
    let compute_per_cycle: f64 = result
        .breakdown
        .iter()
        .map(|b| b.compute_secs.iter().cloned().fold(0.0, f64::max))
        .sum::<f64>()
        / cycles;
    let base_analysis = field("analysis_secs");
    let compute_drift = rel_err(compute_per_cycle, base_analysis);

    let json = Json::obj(vec![
        ("ranks", Json::from(spec.ranks as u64)),
        (
            "checks",
            Json::Arr(
                checks
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("name", Json::from(c.name)),
                            ("trace", Json::Num(c.trace)),
                            ("baseline", Json::Num(c.baseline)),
                            ("ok", Json::Bool(c.ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("compute_secs_per_analysis", Json::Num(compute_per_cycle)),
        ("baseline_analysis_secs", Json::Num(base_analysis)),
        ("compute_rel_drift", Json::Num(compute_drift)),
    ]);
    (checks, json)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "TRACE_report.json".to_string());
    let ranks: usize =
        arg_value(&args, "--ranks").map_or(4, |v| v.parse().expect("--ranks wants a number"));
    let cycles: usize =
        arg_value(&args, "--cycles").map_or(2, |v| v.parse().expect("--cycles wants a number"));

    header("trace_report", "Cross-rank trace timeline of the distributed EnSF analysis");

    let (dim, tile, members, n_steps): (usize, usize, usize, usize) =
        if quick { (512, 64, 8, 5) } else { (8192, 64, 20, 100) };
    let spec = TimelineSpec {
        dim,
        tile,
        members,
        ranks,
        cycles,
        ensf: EnsfConfig { n_steps, seed: 9, ..Default::default() },
        seed: 7,
        forecast_hours: 12.0,
    };
    println!(
        "tracing {cycles} cycles: d = {dim}, tile {tile}, P = {members}, {n_steps} SDE steps, \
         {ranks} ranks\n"
    );

    let result = trace_timeline(&spec);

    println!(
        "{:>6} {:>11} {:>12} {:>11} {:>11} {:>14}",
        "cycle", "forecast", "compute", "comm", "gather", "critical path"
    );
    for b in &result.breakdown {
        let slowest = b.compute_secs.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:>6} {:>10.4}s {:>11.4}s {:>10.4}s {:>10.4}s {:>13.4}s",
            b.cycle,
            b.forecast_secs,
            slowest,
            b.analysis_comm_secs,
            b.gather_comm_secs,
            b.critical_path_secs
        );
    }
    let total_compute: f64 =
        result.breakdown.iter().flat_map(|b| b.compute_secs.iter()).sum();
    let total_comm: f64 =
        result.breakdown.iter().map(|b| b.analysis_comm_secs + b.gather_comm_secs).sum();
    let frac = total_comm / (total_comm + total_compute).max(f64::MIN_POSITIVE);
    println!(
        "\ntotals: {:.4}s compute (all ranks), {:.4}s modeled comm ({:.1}% of the sum)",
        total_compute,
        total_comm,
        100.0 * frac
    );
    println!("{} trace events across {} lanes (+1 comm lane)", result.events.len(), ranks);

    let mut failed = false;
    let reconciliation = match arg_value(&args, "--baseline") {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            let baseline = telemetry::json::parse(&text)
                .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
            let (checks, json) = reconcile(&result, &spec, &baseline);
            println!("\nreconciliation against {path}:");
            for c in &checks {
                println!(
                    "  {:<32} trace {:>14.6e}  baseline {:>14.6e}  {}",
                    c.name,
                    c.trace,
                    c.baseline,
                    if c.ok { "ok" } else { "MISMATCH" }
                );
                failed |= !c.ok;
            }
            json
        }
        None => {
            println!("\n(no --baseline given; skipping reconciliation)");
            Json::Null
        }
    };

    // One document: a loadable Chrome trace plus the structured report
    // (the trace-event format ignores unknown top-level keys).
    let mut doc = telemetry::chrome_trace(&result.events);
    if let Json::Obj(pairs) = &mut doc {
        pairs.push((
            "summary".to_string(),
            Json::obj(vec![
                ("ranks", Json::from(ranks as u64)),
                ("cycles", Json::from(cycles as u64)),
                ("dim", Json::from(dim as u64)),
                ("members", Json::from(members as u64)),
                ("n_steps", Json::from(n_steps as u64)),
                ("total_compute_secs", Json::Num(total_compute)),
                ("total_comm_secs", Json::Num(total_comm)),
                (
                    "per_cycle",
                    Json::Arr(result.breakdown.iter().map(|b| b.to_json()).collect()),
                ),
            ]),
        ));
        pairs.push(("reconciliation".to_string(), reconciliation));
    }
    telemetry::report::write_json(std::path::Path::new(&out), &doc)
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("trace written to {out}");

    if failed {
        eprintln!("trace_report: reconciliation FAILED");
        std::process::exit(1);
    }
}
