//! Fig. 4: RMSE of the four architectures over the assimilation window.
//!
//! Default: a 32² grid with 60 cycles (~3 min in release). Pass `--paper`
//! for the paper's 64 × 64 × 2 grid with 20 members (slow: tens of minutes
//! on a laptop; the SQG + filters then run at the paper's exact setup).
//! Pass `--cycles N` to override the cycle count.

use bench::Json;
use da_core::experiments::{pretrain_surrogate, run_comparison, ComparisonConfig};
use da_core::osse::OsseConfig;
use sqg::SqgParams;
use vit::VitConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper = args.iter().any(|a| a == "--paper");
    let cycles = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if paper { 300 } else { 60 });

    bench::header(
        "Fig. 4",
        "RMSE of SQG-only / ViT-only / SQG+LETKF / ViT+EnSF (imperfect model)",
    );

    let config = if paper {
        ComparisonConfig::paper(cycles)
    } else {
        // Reduced default: 32² grid, 16 members — same physics and filters,
        // ~20x cheaper than the paper grid.
        let params = SqgParams { n: 32, ekman: 0.05, ..Default::default() };
        ComparisonConfig {
            osse: OsseConfig {
                params,
                cycles,
                obs_sigma: 0.005,
                ens_size: 16,
                ic_sigma: 0.01,
                spinup_steps: 600,
                seed: 2024,
                ..Default::default()
            },
            vit: VitConfig::small(32),
            pretrain_pairs: 80,
            pretrain_epochs: 30,
            online_steps: 1,
            ..ComparisonConfig::small(cycles)
        }
    };

    eprintln!("pre-training the ViT surrogate offline...");
    let surrogate = pretrain_surrogate(&config);
    eprintln!("running the four architectures over {cycles} cycles...");
    let cmp = run_comparison(&config, surrogate);

    println!("climatological SD: {:.5}\n", cmp.nature.climatology_sd);
    print!("{:>7}", "hour");
    for s in &cmp.series {
        print!(" {:>12}", s.label);
    }
    println!();
    let stride = (cycles / 30).max(1);
    for i in (0..cycles).step_by(stride) {
        print!("{:>7.0}", cmp.series[0].hours[i]);
        for s in &cmp.series {
            print!(" {:>12.5}", s.rmse[i]);
        }
        println!();
    }

    println!("\nsteady-state RMSE (last half of cycles):");
    for s in &cmp.series {
        println!(
            "  {:>10}: {:.5}  ({:.2}x climatology)",
            s.label,
            s.steady_rmse(),
            s.steady_rmse() / cmp.nature.climatology_sd
        );
    }
    println!("\npaper shape: free runs (SQG-only, ViT-only) saturate near climatology;");
    println!("LETKF degrades under model error; ViT+EnSF stays lowest and stable.");

    let series = cmp
        .series
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("label", Json::from(s.label.as_str())),
                ("steady_rmse", Json::Num(s.steady_rmse())),
                ("hours", Json::Arr(s.hours.iter().map(|&h| Json::Num(h)).collect())),
                ("rmse", Json::Arr(s.rmse.iter().map(|&r| Json::Num(r)).collect())),
                ("spread", Json::Arr(s.spread.iter().map(|&v| Json::Num(v)).collect())),
            ])
        })
        .collect();
    bench::emit_json(
        "fig4",
        "RMSE of SQG-only / ViT-only / SQG+LETKF / ViT+EnSF (imperfect model)",
        Json::obj(vec![
            ("cycles", Json::from(cycles)),
            ("climatology_sd", Json::Num(cmp.nature.climatology_sd)),
            ("series", Json::Arr(series)),
        ]),
    );
}
