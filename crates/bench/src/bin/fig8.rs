//! Fig. 8: RCCL collective bus bandwidth on Frontier — AllReduce,
//! AllGather and ReduceScatter vs message size and GCD count.

use bench::Json;
use hpc::{bus_bandwidth, Collective, Topology};

const MB: u64 = 1024 * 1024;

fn main() {
    bench::header("Fig. 8", "RCCL collective bus bandwidth [GB/s]");

    let sizes: Vec<u64> = vec![
        8 * MB,
        16 * MB,
        32 * MB,
        64 * MB,
        128 * MB,
        256 * MB,
        512 * MB,
        1024 * MB,
    ];
    let gcd_counts = [8usize, 64, 256, 1024];

    let mut points = Vec::new();
    for op in [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter] {
        println!("\n{op:?}:");
        print!("{:>10}", "msg\\GCDs");
        for &g in &gcd_counts {
            print!(" {:>9}", g);
        }
        println!();
        for &s in &sizes {
            print!("{:>10}", bench::human_bytes(s));
            for &g in &gcd_counts {
                let topo = Topology::frontier(g);
                let bw = bus_bandwidth(&topo, op, g, s) / 1e9;
                print!(" {:>9.1}", bw);
                points.push(Json::obj(vec![
                    ("op", Json::from(format!("{op:?}"))),
                    ("bytes", Json::from(s)),
                    ("gcds", Json::from(g)),
                    ("gbps", Json::Num(bw)),
                ]));
            }
            println!();
        }
    }

    // Quantify the dip for the caption.
    let topo = Topology::frontier(1024);
    let at_64 = bus_bandwidth(&topo, Collective::AllReduce, 1024, 64 * MB) / 1e9;
    let at_256 = bus_bandwidth(&topo, Collective::AllReduce, 1024, 256 * MB) / 1e9;
    let at_1g = bus_bandwidth(&topo, Collective::AllReduce, 1024, 1024 * MB) / 1e9;
    println!(
        "\nAllReduce dip @1024 GCDs: 64 MiB {at_64:.1} -> 256 MiB {at_256:.1} -> 1 GiB {at_1g:.1} GB/s"
    );
    println!("paper shape: bandwidth rises with message size; AllReduce wins at");
    println!("64 MiB at scale; a protocol-switch dip appears near 256 MiB; AG ~= RS.");

    bench::emit_json(
        "fig8",
        "RCCL collective bus bandwidth [GB/s]",
        Json::obj(vec![("points", Json::Arr(points))]),
    );
}
