//! Partial-observation scenario study: inpainting EnSF vs the
//! mask-ignoring baseline vs masked LETKF across the standard scenario
//! registry (`da_core::scenario::standard_scenarios`).
//!
//! Each row runs one `(scenario, method)` OSSE on the SQG grid and
//! reports the steady-state RMSE split into observed and unobserved
//! components plus the cumulative analysis wall time:
//!
//! * `block25` — 25 % contiguous block outage straddling the level
//!   boundary: the headline Fig.-3-style scenario. The bench gate floors
//!   on the unobserved-region RMSE ratio `ensf_ignore / ensf_inpaint`
//!   (the inpainting filter must beat the mask-ignoring filter by ≥25 %
//!   where there are no sensors; in practice the margin is ~10×).
//! * `strided2` — every other component observed.
//! * `track` — moving satellite-track window, cycle-indexed.
//! * `arctan_block25` — the block outage composed with the saturating
//!   arctan operator (LETKF is skipped: it has no nonlinear-operator
//!   variant).
//!
//! Writes a machine-readable report to `BENCH_scenarios.json` (override
//! with `--out <path>`); `--quick` shrinks the ensemble/cycle count for
//! CI. The derived ratios are gated by `bench_gate` via
//! `--fresh-scenarios` / `--baseline-scenarios`.
//!
//! Run: `cargo run --release -p bench --bin scenario_suite`

use bench::{header, Json};
use da_core::osse::OsseConfig;
use da_core::{run_scenario, standard_scenarios, ObsOperatorKind, ScenarioMethod, ScenarioResult};
use ensf::EnsfConfig;
use sqg::SqgParams;

/// The grid/ensemble shape of one study.
struct Shape {
    n: usize,
    members: usize,
    n_steps: usize,
    cycles: usize,
}

fn base_config(shape: &Shape) -> OsseConfig {
    OsseConfig {
        params: SqgParams { n: shape.n, ..Default::default() },
        cycles: shape.cycles,
        obs_sigma: 0.005,
        ens_size: shape.members,
        ic_sigma: 0.01,
        spinup_steps: 40,
        seed: 3,
        ..Default::default()
    }
}

fn result_json(r: &ScenarioResult) -> Json {
    // Non-finite RMSE (a filter that drove the model off the attractor)
    // serializes as `null`; `diverged` makes the failure machine-readable.
    Json::obj(vec![
        ("scenario", Json::from(r.scenario)),
        ("method", Json::from(r.method)),
        ("rmse_observed", Json::Num(r.rmse_observed)),
        ("rmse_unobserved", Json::Num(r.rmse_unobserved)),
        ("rmse_total", Json::Num(r.rmse_total)),
        ("analysis_secs", Json::Num(r.analysis_secs)),
        ("cycles", Json::from(r.cycles as u64)),
        ("diverged", Json::Bool(!r.rmse_total.is_finite())),
    ])
}

fn report_row(r: &ScenarioResult) {
    let fmt = |v: f64| {
        if v.is_finite() { format!("{v:.5}") } else { "diverged".to_string() }
    };
    println!(
        "{:>14} {:>13} {:>10} {:>12} {:>10} {:>10.4}",
        r.scenario,
        r.method,
        fmt(r.rmse_observed),
        fmt(r.rmse_unobserved),
        fmt(r.rmse_total),
        r.analysis_secs
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scenarios.json".to_string());

    header("scenario_suite", "Partial-observation scenarios: inpainting EnSF vs baselines");
    let shape = if quick {
        Shape { n: 16, members: 8, n_steps: 10, cycles: 6 }
    } else {
        Shape { n: 16, members: 16, n_steps: 20, cycles: 10 }
    };
    let base = base_config(&shape);
    let ensf_config = EnsfConfig { n_steps: shape.n_steps, seed: 5, ..Default::default() };
    let dim = base.params.state_dim();
    println!(
        "d = {dim}, P = {}, {} SDE steps, {} cycles\n",
        shape.members, shape.n_steps, shape.cycles
    );
    println!(
        "{:>14} {:>13} {:>10} {:>12} {:>10} {:>10}",
        "scenario", "method", "rmse-obs", "rmse-unobs", "rmse-tot", "secs"
    );

    let methods = [
        ScenarioMethod::InpaintEnsf,
        ScenarioMethod::InpaintFlow,
        ScenarioMethod::MaskIgnoringEnsf,
        ScenarioMethod::MaskedLetkf,
    ];
    let mut rows: Vec<ScenarioResult> = Vec::new();
    for spec in standard_scenarios(dim) {
        for method in methods {
            // LETKF has no nonlinear-operator variant; skip it where the
            // scenario composes a non-identity observation operator.
            if method == ScenarioMethod::MaskedLetkf && spec.operator != ObsOperatorKind::Identity
            {
                continue;
            }
            let r = run_scenario(&base, &spec, method, &ensf_config);
            report_row(&r);
            rows.push(r);
        }
        println!();
    }

    let headline = |method: &str| {
        rows.iter()
            .find(|r| r.scenario == "block25" && r.method == method)
            .map(|r| r.rmse_unobserved)
            .unwrap_or(f64::NAN)
    };
    let inpaint = headline("ensf_inpaint");
    let ignore = headline("ensf_ignore");
    println!(
        "headline: block25 unobserved RMSE — inpaint {:.5} vs mask-ignoring {:.5} ({:.1}×; gate: ≥ 1.25×)",
        inpaint,
        ignore,
        ignore / inpaint
    );

    let payload = Json::obj(vec![
        ("id", Json::from("scenario_suite")),
        ("quick", Json::Bool(quick)),
        (
            "results",
            Json::obj(vec![
                ("dim", Json::from(dim as u64)),
                ("members", Json::from(shape.members as u64)),
                ("cycles", Json::from(shape.cycles as u64)),
                ("scenarios", Json::Arr(rows.iter().map(result_json).collect())),
            ]),
        ),
    ]);
    telemetry::report::write_json(std::path::Path::new(&out), &payload)
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("scenario report written to {out}");
}
