//! Fig. 5: final-time analysis-mean fields and errors for the four
//! architectures, rendered as ASCII contour maps plus error statistics.
//!
//! Accepts the same `--paper` / `--cycles N` flags as `fig4`.

use bench::Json;
use da_core::experiments::{pretrain_surrogate, run_comparison, ComparisonConfig};
use da_core::osse::OsseConfig;
use sqg::SqgParams;
use vit::VitConfig;

/// Renders the bottom-boundary field as a coarse ASCII contour map.
fn render(field: &[f64], n: usize, cols: usize) {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-30);
    let step = (n / cols).max(1);
    for iy in (0..n).step_by(step) {
        let mut line = String::new();
        for ix in (0..n).step_by(step) {
            let v = field[iy * n + ix];
            let idx = (((v - lo) / span) * 9.0).round() as usize;
            line.push(shades[idx.min(9)]);
        }
        println!("    {line}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper = args.iter().any(|a| a == "--paper");
    let cycles = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if paper { 300 } else { 40 });

    bench::header("Fig. 5", "analysis-mean fields and errors at the final time");

    let config = if paper {
        ComparisonConfig::paper(cycles)
    } else {
        let params = SqgParams { n: 32, ekman: 0.05, ..Default::default() };
        ComparisonConfig {
            osse: OsseConfig {
                params,
                cycles,
                obs_sigma: 0.005,
                ens_size: 16,
                ic_sigma: 0.01,
                spinup_steps: 600,
                seed: 2024,
                ..Default::default()
            },
            vit: VitConfig::small(32),
            pretrain_pairs: 80,
            pretrain_epochs: 30,
            ..ComparisonConfig::small(cycles)
        }
    };
    let n = config.osse.params.n;

    eprintln!("running the comparison ({cycles} cycles)...");
    let surrogate = pretrain_surrogate(&config);
    let cmp = run_comparison(&config, surrogate);
    let truth = cmp.nature.truth.last().unwrap();

    println!("ground truth (bottom boundary, t = {} h):", cycles * 12);
    render(&truth[..n * n], n, 32);

    let mut rows = Vec::new();
    for s in &cmp.series {
        let err: Vec<f64> =
            s.final_mean.iter().zip(truth).map(|(a, b)| a - b).collect();
        let rmse = stats::metrics::rmse(&s.final_mean, truth);
        let corr = stats::metrics::pattern_correlation(&s.final_mean, truth);
        let max_err = err.iter().cloned().fold(0.0f64, |m, v| m.max(v.abs()));
        println!(
            "\n--- {} ---  final RMSE {:.5}, pattern corr {:.3}, max |err| {:.5}",
            s.label, rmse, corr, max_err
        );
        println!("  analysis mean:");
        render(&s.final_mean[..n * n], n, 32);
        rows.push(Json::obj(vec![
            ("label", Json::from(s.label.as_str())),
            ("final_rmse", Json::Num(rmse)),
            ("pattern_corr", Json::Num(corr)),
            ("max_abs_err", Json::Num(max_err)),
        ]));
    }

    println!("\npaper shape: EnSF+ViT closest to truth (fine scales retained);");
    println!("LETKF keeps large eddies but smooths extremes; free runs decorrelate.");

    bench::emit_json(
        "fig5",
        "analysis-mean fields and errors at the final time",
        Json::obj(vec![("cycles", Json::from(cycles)), ("rows", Json::Arr(rows))]),
    );
}
