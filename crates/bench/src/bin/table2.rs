//! Table II: the three ViT surrogate architectures, with exact parameter
//! counts from the implementation's bookkeeping.

use bench::Json;
use vit::VitConfig;

fn main() {
    bench::header("Table II", "architecture of the ViT surrogate models");
    println!(
        "{:>7} {:>6} {:>8} {:>7} {:>11} {:>10} {:>10}",
        "input", "patch", "#layers", "#heads", "#embed dim", "#mlp ratio", "#params"
    );
    let mut rows = Vec::new();
    for size in [64usize, 128, 256] {
        let c = VitConfig::table2(size);
        let params = c.param_count();
        let human = if params >= 1_000_000_000 {
            format!("{:.1}B", params as f64 / 1e9)
        } else {
            format!("{:.0}M", params as f64 / 1e6)
        };
        println!(
            "{:>6}² {:>6} {:>8} {:>7} {:>11} {:>10} {:>10}",
            size, c.patch_size, c.depth, c.heads, c.embed_dim, c.mlp_ratio, human
        );
        rows.push(Json::obj(vec![
            ("input", Json::from(size)),
            ("patch", Json::from(c.patch_size)),
            ("depth", Json::from(c.depth)),
            ("heads", Json::from(c.heads)),
            ("embed_dim", Json::from(c.embed_dim)),
            ("mlp_ratio", Json::from(c.mlp_ratio)),
            ("params", Json::from(params)),
        ]));
    }
    println!("\npaper values: 157M / 1.2B / 2.5B (agreement within 5% — see");
    println!("EXPERIMENTS.md for the head/embedding bookkeeping differences).");

    bench::emit_json(
        "table2",
        "architecture of the ViT surrogate models",
        Json::obj(vec![("rows", Json::Arr(rows))]),
    );
}
