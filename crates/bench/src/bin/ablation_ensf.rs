//! EnSF design ablations (DESIGN.md §4): damping profile h(t), reverse-SDE
//! step count, score mini-batch size J, and spread relaxation — each swept
//! on a cycling Lorenz-96 twin experiment at the edge of the filter's
//! working envelope (the regime where the prior score and sampling quality
//! actually matter; with the paper's razor-sharp SQG observations the
//! likelihood pull dominates and every variant coincides).
//!
//! The paper fixes h(t) = 1 − t and defers alternatives to future work;
//! this binary runs that exploration.

use da_core::{ForecastModel, Lorenz96, Lorenz96Params};
use ensf::{Damping, DiffusionSchedule, Ensf, EnsfConfig, IdentityObs};
use stats::gaussian::standard_normal;
use stats::rng::{member_rng, seeded};
use stats::{metrics, Ensemble};

const DIM: usize = 40;
const MEMBERS: usize = 20;
const CYCLES: usize = 80;
// At the edge of EnSF's working envelope (the filter needs informative
// observations; see EXPERIMENTS.md): noisy enough that design choices
// differentiate, informative enough that the filter tracks.
const OBS_SIGMA: f64 = 0.1;

/// Cycles EnSF on Lorenz-96 and returns the steady-state (last half) RMSE.
fn run_with(config: EnsfConfig) -> f64 {
    let mut nature = Lorenz96::new(Lorenz96Params::default());
    let mut truth = nature.spinup(11, 20.0);
    let mut model = Lorenz96::new(Lorenz96Params::default());
    let obs = IdentityObs::new(DIM, OBS_SIGMA);
    let mut obs_rng = seeded(config.seed ^ 0x0B5);

    let mut ens = Ensemble::zeros(MEMBERS, DIM);
    for m in 0..MEMBERS {
        let mut rng = member_rng(55, m);
        for (x, t) in ens.member_mut(m).iter_mut().zip(&truth) {
            *x = t + 1.0 * standard_normal(&mut rng);
        }
    }

    let mut filter = Ensf::new(config);
    let mut rmse = Vec::with_capacity(CYCLES);
    for _ in 0..CYCLES {
        nature.forecast(&mut truth, 6.0);
        model.forecast_ensemble(&mut ens, 6.0);
        let y: Vec<f64> = truth
            .iter()
            .map(|t| t + OBS_SIGMA * standard_normal(&mut obs_rng))
            .collect();
        ens = filter.analyze(&ens, &y, &obs);
        rmse.push(metrics::rmse(&ens.mean(), &truth));
    }
    rmse[CYCLES / 2..].iter().sum::<f64>() / (CYCLES / 2) as f64
}

fn main() {
    bench::header("EnSF ablations", "damping / SDE steps / mini-batch / relaxation");
    println!(
        "(Lorenz-96 dim {DIM}, {MEMBERS} members, {CYCLES} cycles, obs sd {OBS_SIGMA}; \
         climatological sd ~3.6; steady-state RMSE)\n"
    );

    println!("damping profile h(t)  [paper: Linear; alternatives = its future work]:");
    for profile in [Damping::Linear, Damping::Quadratic, Damping::Sqrt, Damping::Cosine] {
        let cfg = EnsfConfig {
            n_steps: 30,
            seed: 1,
            schedule: DiffusionSchedule::default().with_damping(profile),
            ..Default::default()
        };
        println!("  {profile:<11?} {:.4}", run_with(cfg));
    }

    println!("\nreverse-SDE steps:");
    for steps in [5usize, 10, 20, 40, 80] {
        let cfg = EnsfConfig { n_steps: steps, seed: 2, ..Default::default() };
        println!("  {steps:>4} steps  {:.4}", run_with(cfg));
    }

    println!("\nscore mini-batch J (of {MEMBERS} members):");
    for j in [5usize, 10, 20] {
        let cfg = EnsfConfig {
            n_steps: 30,
            minibatch: if j < MEMBERS { Some(j) } else { None },
            seed: 3,
            ..Default::default()
        };
        println!("  J = {j:>3}    {:.4}", run_with(cfg));
    }

    println!("\nspread relaxation r:");
    for r in [0.0f64, 0.5, 0.9, 1.0] {
        let cfg =
            EnsfConfig { n_steps: 30, seed: 4, spread_relaxation: r, ..Default::default() };
        println!("  r = {r:<4}   {:.4}", run_with(cfg));
    }
}
