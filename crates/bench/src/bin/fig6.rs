//! Fig. 6: computation-performance heatmap (TFLOPS) for the ViT
//! architecture search on a Frontier GCD.

use bench::Json;
use hpc::fig6_heatmap;

fn main() {
    bench::header("Fig. 6", "TFLOPS heatmap over (embed dim x heads x MLP ratio)");

    let embed_dims = [512usize, 1024, 2048, 4096];
    let heads = [4usize, 8, 16, 32];
    let ratios = [1usize, 2, 4, 8];

    for &r in &ratios {
        println!("\nMLP ratio {r}:");
        print!("{:>12}", "embed\\heads");
        for &h in &heads {
            print!(" {:>7}", h);
        }
        println!();
        for &d in &embed_dims {
            print!("{:>12}", d);
            for &h in &heads {
                if d % h != 0 {
                    print!(" {:>7}", "-");
                    continue;
                }
                let grid = fig6_heatmap(&[d], &[h], &[r]);
                print!(" {:>7.1}", grid[0].1);
            }
            println!();
        }
    }

    let full = fig6_heatmap(&embed_dims, &heads, &ratios);
    let min = full.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    let max = full.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let best = full.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
    println!("\nrange: {min:.1} - {max:.1} TFLOPS (paper: ~20 - 52)");
    println!(
        "best shape: embed {} / heads {} / ratio {} at {:.1} TFLOPS",
        best.0.embed_dim, best.0.heads, best.0.mlp_ratio, best.1
    );
    println!("paper heuristics reproduced: peak at embed 2048; more heads hurt;");
    println!("more MLP weight helps.");

    let cells = full
        .iter()
        .map(|(shape, tf)| {
            Json::obj(vec![
                ("embed_dim", Json::from(shape.embed_dim)),
                ("heads", Json::from(shape.heads)),
                ("mlp_ratio", Json::from(shape.mlp_ratio)),
                ("tflops", Json::Num(*tf)),
            ])
        })
        .collect();
    bench::emit_json(
        "fig6",
        "TFLOPS heatmap over (embed dim x heads x MLP ratio)",
        Json::obj(vec![
            ("min_tflops", Json::Num(min)),
            ("max_tflops", Json::Num(max)),
            ("cells", Json::Arr(cells)),
        ]),
    );
}
