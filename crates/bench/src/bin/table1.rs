//! Table I: distributed training methods and their memory-partition
//! strategies (FSDP ↔ ZeRO correspondence), plus the quantitative memory
//! and communication footprints behind the taxonomy.

use bench::Json;
use hpc::Strategy;

fn main() {
    bench::header("Table I", "distributed training memory-partition strategies");

    println!("{:<28} {:<18} {:<10}", "partitioned state", "FSDP", "ZeRO");
    println!("{:<28} {:<18} {:<10}", "optimizer", "n/a", "stage 1");
    println!("{:<28} {:<18} {:<10}", "optimizer + gradient", "shard_grad_op", "stage 2");
    println!("{:<28} {:<18} {:<10}", "optimizer + gradient + weight", "full_shard", "stage 3");
    println!("{:<28} {:<18} {:<10}", "hierarchical", "hybrid_shard", "n/a");

    println!("\nverified equivalences (memory model, 1.2B params, 1024 ranks):");
    let p = 1_200_000_000u64;
    for (fsdp, zero) in [
        (Strategy::FsdpShardGradOp, Strategy::ZeroStage2),
        (Strategy::FsdpFullShard, Strategy::ZeroStage3),
    ] {
        let a = fsdp.memory_per_gcd(p, 1024, 8);
        let b = zero.memory_per_gcd(p, 1024, 8);
        assert_eq!(a, b, "Table I equivalence violated");
        println!(
            "  {fsdp:?} == {zero:?}: {:.2} GiB/GCD",
            a / (1u64 << 30) as f64
        );
    }

    println!("\nper-GCD memory [GiB] vs strategy (1.2B params):");
    println!("{:<18} {:>8} {:>8} {:>8}", "strategy", "8 ranks", "64", "1024");
    let mut memory = Vec::new();
    for s in [
        Strategy::Ddp,
        Strategy::ZeroStage1,
        Strategy::ZeroStage2,
        Strategy::ZeroStage3,
        Strategy::FsdpHybrid,
    ] {
        let row: Vec<String> = [8usize, 64, 1024]
            .iter()
            .map(|&n| format!("{:>8.2}", s.memory_per_gcd(p, n, 8) / (1u64 << 30) as f64))
            .collect();
        println!("{:<18} {}", format!("{s:?}"), row.join(""));
        let cols = [8usize, 64, 1024]
            .iter()
            .map(|&n| {
                Json::obj(vec![
                    ("ranks", Json::from(n)),
                    ("gib_per_gcd", Json::Num(s.memory_per_gcd(p, n, 8) / (1u64 << 30) as f64)),
                ])
            })
            .collect();
        memory.push(Json::obj(vec![
            ("strategy", Json::from(format!("{s:?}"))),
            ("memory", Json::Arr(cols)),
        ]));
    }

    println!("\ncommunication volume per step (relative to DDP):");
    let ddp = Strategy::Ddp.comm_volume(p) as f64;
    let mut comm = Vec::new();
    for s in [Strategy::Ddp, Strategy::ZeroStage1, Strategy::FsdpShardGradOp, Strategy::FsdpFullShard] {
        println!("  {s:?}: {:.2}x", s.comm_volume(p) as f64 / ddp);
        comm.push(Json::obj(vec![
            ("strategy", Json::from(format!("{s:?}"))),
            ("relative_to_ddp", Json::Num(s.comm_volume(p) as f64 / ddp)),
        ]));
    }

    bench::emit_json(
        "table1",
        "distributed training memory-partition strategies",
        Json::obj(vec![
            ("params", Json::from(p)),
            ("memory_per_gcd", Json::Arr(memory)),
            ("comm_volume", Json::Arr(comm)),
        ]),
    );
}
