//! Performance suite for the batched EnSF kernel and the FFT plan cache.
//!
//! Measures (medians over repeated runs):
//!
//! * EnSF analysis wall time, reference vs batched kernel, across several
//!   (particles, members, dim) shapes including the paper-scale
//!   `P=20, M=20, d=8192` with 100 reverse-SDE steps;
//! * SQG RK4 step time (plan-cached, scratch-hoisted hot path) and the
//!   state-vector spectral roundtrip with cached vs freshly built plans;
//! * raw GEMM throughput of the two kernels the batched score rides on.
//!
//! Writes a machine-readable report to `BENCH_perf.json` (override with
//! `--out <path>`); `--quick` shrinks shapes and repetitions for CI.
//!
//! Run: `cargo run --release -p bench --bin perf_suite`

use bench::{header, Json};
use ensf::{Ensf, EnsfConfig, IdentityObs, ScoreKernel};
use fft::{plan_cache, Complex, Direction, Fft2};
use linalg::gemm::{matmul_abt_into, matmul_slices_into};
use sqg::dynamics::Stepper;
use sqg::SqgParams;
use stats::gaussian::fill_standard_normal;
use stats::rng::seeded;
use stats::Ensemble;
use std::time::Instant;

/// Median wall time of `reps` runs of `f`, in seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn forecast(members: usize, dim: usize, seed: u64) -> Ensemble {
    let mut rng = seeded(seed);
    let mut e = Ensemble::zeros(members, dim);
    for m in 0..members {
        fill_standard_normal(&mut rng, e.member_mut(m));
    }
    e
}

fn ensf_analysis_secs(
    kernel: ScoreKernel,
    fc: &Ensemble,
    y: &[f64],
    n_steps: usize,
    reps: usize,
) -> f64 {
    let obs = IdentityObs::new(fc.dim(), 0.5);
    median_secs(reps, || {
        let mut f = Ensf::new(EnsfConfig { n_steps, seed: 9, kernel, ..Default::default() });
        let an = f.analyze(fc, y, &obs);
        assert!(an.as_slice()[0].is_finite());
    })
}

fn bench_ensf(quick: bool, reps: usize) -> Json {
    // (particles = members, dim, sde steps); the analysis couples P and M.
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(8, 256, 20)]
    } else {
        &[(10, 1024, 50), (20, 4096, 100), (20, 8192, 100)]
    };
    let mut rows = Vec::new();
    for &(members, dim, n_steps) in shapes {
        let fc = forecast(members, dim, 1);
        let y = vec![0.2; dim];
        let reference = ensf_analysis_secs(ScoreKernel::Reference, &fc, &y, n_steps, reps);
        let batched = ensf_analysis_secs(ScoreKernel::Batched, &fc, &y, n_steps, reps);
        let speedup = reference / batched;
        println!(
            "ensf P=M={members:3} d={dim:5} steps={n_steps:3}:  reference {:.4}s  batched {:.4}s  speedup {speedup:.2}x",
            reference, batched
        );
        rows.push(Json::obj(vec![
            ("particles", Json::from(members as u64)),
            ("members", Json::from(members as u64)),
            ("dim", Json::from(dim as u64)),
            ("n_steps", Json::from(n_steps as u64)),
            ("reference_secs", Json::from(reference)),
            ("batched_secs", Json::from(batched)),
            ("speedup", Json::from(speedup)),
        ]));
    }
    Json::Arr(rows)
}

fn bench_sqg(quick: bool, reps: usize) -> Json {
    let n = if quick { 32 } else { 64 };
    let params = SqgParams { n, ..Default::default() };
    let state = sqg::init::random_large_scale(n, 0.05, 3);

    // RK4 step on the plan-cached, scratch-hoisted hot path.
    let mut stepper = Stepper::new(params.clone());
    let mut theta = [state.level(0).to_vec(), state.level(1).to_vec()];
    let step_secs = median_secs(reps, || {
        let mut th = theta.clone();
        for _ in 0..4 {
            stepper.step(&mut th);
        }
        theta[0][0] = th[0][0]; // keep the work observable
    });

    // Spectral <-> grid roundtrip: cached plans vs building plans fresh
    // each conversion (the pre-cache behavior of the state converters).
    let grid = state.to_grid();
    let roundtrip = |fwd: &Fft2, inv: &Fft2| {
        let mut acc = 0.0;
        for g in &grid {
            let mut buf: Vec<Complex> = g.iter().map(|&x| Complex::from_re(x)).collect();
            fwd.process(&mut buf);
            inv.process(&mut buf);
            acc += buf[0].re;
        }
        acc
    };
    let cached_secs = median_secs(reps, || {
        let fwd = plan_cache::fft2(n, n, Direction::Forward);
        let inv = plan_cache::fft2(n, n, Direction::Inverse);
        std::hint::black_box(roundtrip(&fwd, &inv));
    });
    let fresh_secs = median_secs(reps, || {
        let fwd = Fft2::new(n, n, Direction::Forward);
        let inv = Fft2::new(n, n, Direction::Inverse);
        std::hint::black_box(roundtrip(&fwd, &inv));
    });
    let (hits, misses) = plan_cache::stats();
    println!(
        "sqg n={n}: rk4 step {:.6}s  roundtrip cached {:.6}s / fresh {:.6}s ({:.2}x)  cache hits {hits} misses {misses}",
        step_secs / 4.0,
        cached_secs,
        fresh_secs,
        fresh_secs / cached_secs
    );
    Json::obj(vec![
        ("n", Json::from(n as u64)),
        ("rk4_step_secs", Json::from(step_secs / 4.0)),
        ("roundtrip_cached_secs", Json::from(cached_secs)),
        ("roundtrip_fresh_secs", Json::from(fresh_secs)),
        ("plan_cache_speedup", Json::from(fresh_secs / cached_secs)),
        ("plan_cache_hits", Json::from(hits)),
        ("plan_cache_misses", Json::from(misses)),
    ])
}

fn bench_gemm(quick: bool, reps: usize) -> Json {
    let mut rng = seeded(3);

    // Square product, the generic kernel (W X in the batched score).
    let s = if quick { 64 } else { 256 };
    let mut a = vec![0.0; s * s];
    let mut b = vec![0.0; s * s];
    let mut c = vec![0.0; s * s];
    fill_standard_normal(&mut rng, &mut a);
    fill_standard_normal(&mut rng, &mut b);
    let sq_secs = median_secs(reps, || {
        matmul_slices_into(&a, &b, s, s, s, &mut c);
        std::hint::black_box(c[0]);
    });
    let sq_gflops = 2.0 * (s as f64).powi(3) / sq_secs / 1e9;

    // Tall-skinny A Bᵀ, the Gram kernel (Z Xᵀ distances).
    let (m, k) = if quick { (8, 1024) } else { (20, 8192) };
    let mut za = vec![0.0; m * k];
    let mut xb = vec![0.0; m * k];
    let mut gram = vec![0.0; m * m];
    fill_standard_normal(&mut rng, &mut za);
    fill_standard_normal(&mut rng, &mut xb);
    let abt_secs = median_secs(reps, || {
        matmul_abt_into(&za, &xb, m, m, k, &mut gram);
        std::hint::black_box(gram[0]);
    });
    let abt_gflops = 2.0 * (m * m * k) as f64 / abt_secs / 1e9;

    println!(
        "gemm: matmul {s}^3 {sq_gflops:.2} GF/s   abt {m}x{m}x{k} {abt_gflops:.2} GF/s"
    );
    Json::obj(vec![
        ("matmul_size", Json::from(s as u64)),
        ("matmul_gflops", Json::from(sq_gflops)),
        ("abt_m", Json::from(m as u64)),
        ("abt_k", Json::from(k as u64)),
        ("abt_gflops", Json::from(abt_gflops)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let reps = if quick { 2 } else { 5 };

    header(
        "perf_suite",
        "Batched EnSF kernel and FFT plan cache performance suite",
    );

    let ensf = bench_ensf(quick, reps);
    let sqg = bench_sqg(quick, reps);
    let gemm = bench_gemm(quick, reps);

    let payload = Json::obj(vec![
        ("id", Json::from("perf_suite")),
        ("quick", Json::Bool(quick)),
        ("reps", Json::from(reps as u64)),
        (
            "results",
            Json::obj(vec![("ensf", ensf), ("sqg", sqg), ("gemm", gemm)]),
        ),
    ]);
    telemetry::report::write_json(std::path::Path::new(&out), &payload)
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("perf report written to {out}");
}
