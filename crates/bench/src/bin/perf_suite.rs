//! Performance suite for the batched EnSF kernel and the FFT plan cache.
//!
//! Measures (medians over repeated runs):
//!
//! * EnSF analysis wall time, reference vs batched kernel, across several
//!   (particles, members, dim) shapes including the paper-scale
//!   `P=20, M=20, d=8192` with 100 reverse-SDE steps;
//! * SQG RK4 step time (plan-cached, scratch-hoisted hot path), the cached
//!   state-vector spectral roundtrip, and FFT plan acquisition cost (warm
//!   cache lookup vs fresh twiddle/bit-reversal build);
//! * raw GEMM throughput of the two kernels the batched score rides on;
//! * the flow-matching step-count sweep: few-step probability-flow ODE vs
//!   the 100-step reverse SDE (and LETKF) on the reduced Fig. 3 OSSE, with
//!   identity and saturating-arctan observation operators, yielding the
//!   matched-RMSE analysis speedup that `bench_gate` enforces (>= 5x).
//!
//! Writes a machine-readable report to `BENCH_perf.json` (override with
//! `--out <path>`); `--quick` shrinks shapes and repetitions for CI.
//!
//! Run: `cargo run --release -p bench --bin perf_suite`

use bench::{header, Json};
use da_core::osse::{initial_ensemble, nature_run, NatureRun, ObsOperatorKind, OsseConfig};
use da_core::{
    AnalysisScheme, ArctanEnsfScheme, EnsfScheme, FlowMatchingArctanEnsfScheme,
    FlowMatchingEnsfScheme, ForecastModel, LetkfScheme, SqgForecast,
};
use ensf::{Ensf, EnsfConfig, IdentityObs, ScoreKernel};
use fft::{plan_cache, Complex, Direction, Fft2};
use linalg::gemm::{matmul_abt_into, matmul_slices_into};
use sqg::dynamics::Stepper;
use sqg::SqgParams;
use stats::gaussian::fill_standard_normal;
use stats::rng::seeded;
use stats::Ensemble;
use std::time::Instant;

/// Median wall time of `reps` runs of `f`, in seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn forecast(members: usize, dim: usize, seed: u64) -> Ensemble {
    let mut rng = seeded(seed);
    let mut e = Ensemble::zeros(members, dim);
    for m in 0..members {
        fill_standard_normal(&mut rng, e.member_mut(m));
    }
    e
}

fn ensf_analysis_secs(
    kernel: ScoreKernel,
    fc: &Ensemble,
    y: &[f64],
    n_steps: usize,
    reps: usize,
) -> f64 {
    let obs = IdentityObs::new(fc.dim(), 0.5);
    median_secs(reps, || {
        let mut f = Ensf::new(EnsfConfig { n_steps, seed: 9, kernel, ..Default::default() });
        let an = f.analyze(fc, y, &obs);
        assert!(an.as_slice()[0].is_finite());
    })
}

fn bench_ensf(quick: bool, reps: usize) -> Json {
    // (particles = members, dim, sde steps); the analysis couples P and M.
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(8, 256, 20)]
    } else {
        &[(10, 1024, 50), (20, 4096, 100), (20, 8192, 100)]
    };
    let mut rows = Vec::new();
    for &(members, dim, n_steps) in shapes {
        let fc = forecast(members, dim, 1);
        let y = vec![0.2; dim];
        let reference = ensf_analysis_secs(ScoreKernel::Reference, &fc, &y, n_steps, reps);
        let batched = ensf_analysis_secs(ScoreKernel::Batched, &fc, &y, n_steps, reps);
        let speedup = reference / batched;
        println!(
            "ensf P=M={members:3} d={dim:5} steps={n_steps:3}:  reference {:.4}s  batched {:.4}s  speedup {speedup:.2}x",
            reference, batched
        );
        rows.push(Json::obj(vec![
            ("particles", Json::from(members as u64)),
            ("members", Json::from(members as u64)),
            ("dim", Json::from(dim as u64)),
            ("n_steps", Json::from(n_steps as u64)),
            ("reference_secs", Json::from(reference)),
            ("batched_secs", Json::from(batched)),
            ("speedup", Json::from(speedup)),
        ]));
    }
    Json::Arr(rows)
}

fn bench_sqg(quick: bool, reps: usize) -> Json {
    let n = if quick { 32 } else { 64 };
    let params = SqgParams { n, ..Default::default() };
    let state = sqg::init::random_large_scale(n, 0.05, 3);

    // RK4 step on the plan-cached, scratch-hoisted hot path.
    let mut stepper = Stepper::new(params.clone());
    let mut theta = [state.level(0).to_vec(), state.level(1).to_vec()];
    let step_secs = median_secs(reps, || {
        let mut th = theta.clone();
        for _ in 0..4 {
            stepper.step(&mut th);
        }
        theta[0][0] = th[0][0]; // keep the work observable
    });

    // Spectral <-> grid roundtrip on cached plans, for context on how much
    // transform work a conversion amortizes the plan cost against.
    let grid = state.to_grid();
    let roundtrip = |fwd: &Fft2, inv: &Fft2| {
        let mut acc = 0.0;
        for g in &grid {
            let mut buf: Vec<Complex> = g.iter().map(|&x| Complex::from_re(x)).collect();
            fwd.process(&mut buf);
            inv.process(&mut buf);
            acc += buf[0].re;
        }
        acc
    };
    let cached_secs = median_secs(reps, || {
        let fwd = plan_cache::fft2(n, n, Direction::Forward);
        let inv = plan_cache::fft2(n, n, Direction::Inverse);
        std::hint::black_box(roundtrip(&fwd, &inv));
    });

    // Plan acquisition itself: a warm cache hit (map lookup + Arc clone) vs
    // an honest fresh build (twiddle and bit-reversal tables for both axes).
    // The previous version of this suite compared cached-plan vs fresh-plan
    // *roundtrips*, where the build cost is amortized under milliseconds of
    // transform work — that reported a meaningless ~1.0x "speedup". Timing
    // the acquisitions directly is what the plan cache actually buys.
    let plan_iters = 64;
    std::hint::black_box(plan_cache::fft2(n, n, Direction::Forward));
    std::hint::black_box(plan_cache::fft2(n, n, Direction::Inverse));
    let plan_lookup_secs = median_secs(reps, || {
        for _ in 0..plan_iters {
            std::hint::black_box(plan_cache::fft2(n, n, Direction::Forward));
            std::hint::black_box(plan_cache::fft2(n, n, Direction::Inverse));
        }
    }) / plan_iters as f64;
    let plan_build_secs = median_secs(reps, || {
        for _ in 0..plan_iters {
            std::hint::black_box(Fft2::new(n, n, Direction::Forward));
            std::hint::black_box(Fft2::new(n, n, Direction::Inverse));
        }
    }) / plan_iters as f64;
    let plan_cache_speedup = plan_build_secs / plan_lookup_secs;

    let (hits, misses) = plan_cache::stats();
    println!(
        "sqg n={n}: rk4 step {:.6}s  roundtrip cached {:.6}s  plan build {:.3e}s / lookup {:.3e}s ({:.1}x)  cache hits {hits} misses {misses}",
        step_secs / 4.0,
        cached_secs,
        plan_build_secs,
        plan_lookup_secs,
        plan_cache_speedup
    );
    Json::obj(vec![
        ("n", Json::from(n as u64)),
        ("rk4_step_secs", Json::from(step_secs / 4.0)),
        ("roundtrip_cached_secs", Json::from(cached_secs)),
        ("plan_build_secs", Json::from(plan_build_secs)),
        ("plan_lookup_secs", Json::from(plan_lookup_secs)),
        ("plan_cache_speedup", Json::from(plan_cache_speedup)),
        ("plan_cache_hits", Json::from(hits)),
        ("plan_cache_misses", Json::from(misses)),
    ])
}

fn bench_gemm(quick: bool, reps: usize) -> Json {
    let mut rng = seeded(3);

    // Square product, the generic kernel (W X in the batched score).
    let s = if quick { 64 } else { 256 };
    let mut a = vec![0.0; s * s];
    let mut b = vec![0.0; s * s];
    let mut c = vec![0.0; s * s];
    fill_standard_normal(&mut rng, &mut a);
    fill_standard_normal(&mut rng, &mut b);
    let sq_secs = median_secs(reps, || {
        matmul_slices_into(&a, &b, s, s, s, &mut c);
        std::hint::black_box(c[0]);
    });
    let sq_gflops = 2.0 * (s as f64).powi(3) / sq_secs / 1e9;

    // Tall-skinny A Bᵀ, the Gram kernel (Z Xᵀ distances).
    let (m, k) = if quick { (8, 1024) } else { (20, 8192) };
    let mut za = vec![0.0; m * k];
    let mut xb = vec![0.0; m * k];
    let mut gram = vec![0.0; m * m];
    fill_standard_normal(&mut rng, &mut za);
    fill_standard_normal(&mut rng, &mut xb);
    let abt_secs = median_secs(reps, || {
        matmul_abt_into(&za, &xb, m, m, k, &mut gram);
        std::hint::black_box(gram[0]);
    });
    let abt_gflops = 2.0 * (m * m * k) as f64 / abt_secs / 1e9;

    println!(
        "gemm: matmul {s}^3 {sq_gflops:.2} GF/s   abt {m}x{m}x{k} {abt_gflops:.2} GF/s"
    );
    Json::obj(vec![
        ("matmul_size", Json::from(s as u64)),
        ("matmul_gflops", Json::from(sq_gflops)),
        ("abt_m", Json::from(m as u64)),
        ("abt_k", Json::from(k as u64)),
        ("abt_gflops", Json::from(abt_gflops)),
    ])
}

/// Saturation gain for the arctan leg of the flow sweep. Mild: the
/// observations stay informative over the 20-cycle run (the golden
/// fixtures' stress gain of 40 saturates so hard at `d = 512` that every
/// filter diverges, which would make the sweep meaningless).
const FLOW_ARCTAN_GAIN: f64 = 1.0;

/// Accuracy corridor for the matched-RMSE headline: the cheapest flow step
/// count whose steady RMSE is within 10% of the 100-step reverse SDE.
const FLOW_RMSE_SLACK: f64 = 1.1;

/// Reduced Fig. 3 OSSE for the step-count sweep: the diagnostics-harness
/// grid (`16x16x2`, Ekman-damped) observed every 12 h with moderate noise.
/// `obs_sigma = 0.03` deliberately sits above the paper's 0.01: with
/// near-perfect observations the stochastic sampler's bias toward pinning
/// every member onto the noisy obs is unbeatable by construction (RMSE ==
/// obs noise), so a matched-accuracy comparison there measures the bias,
/// not the transport. At moderate noise both transports have to weigh
/// prior against obs and the comparison is fair.
fn flow_osse_config(quick: bool, obs_operator: ObsOperatorKind) -> OsseConfig {
    OsseConfig {
        params: SqgParams { n: if quick { 8 } else { 16 }, ekman: 0.05, ..Default::default() },
        cycles: if quick { 4 } else { 20 },
        obs_sigma: 0.03,
        ens_size: 16,
        spinup_steps: if quick { 20 } else { 200 },
        seed: 3,
        obs_operator,
        ..Default::default()
    }
}

/// One cycling DA run against a precomputed nature run, timing *only* the
/// analysis calls (the RK4 forecast dominates wall time and is identical
/// across schemes). Returns (steady RMSE vs truth, total analysis seconds).
fn cycle_da(config: &OsseConfig, nature: &NatureRun, scheme: &mut dyn AnalysisScheme) -> (f64, f64) {
    let mut model = SqgForecast::perfect(config.params.clone());
    let mut ensemble = initial_ensemble(config, &nature.truth[0]);
    let mut analysis_secs = 0.0;
    let mut rmse = Vec::with_capacity(config.cycles);
    for cycle in 0..config.cycles {
        model.forecast_ensemble(&mut ensemble, config.obs_interval_hours);
        let t0 = Instant::now();
        ensemble = scheme.analyze(&ensemble, &nature.observations[cycle]);
        analysis_secs += t0.elapsed().as_secs_f64();
        rmse.push(stats::metrics::rmse(&ensemble.mean(), &nature.truth[cycle + 1]));
        if std::env::var("FLOW_SWEEP_TRACE").is_ok() {
            println!(
                "  trace cycle {cycle:2}: rmse {:.4e}  spread {:.4e}",
                rmse.last().unwrap(),
                ensemble.spread()
            );
        }
    }
    let tail = &rmse[rmse.len() / 2..];
    (tail.iter().sum::<f64>() / tail.len() as f64, analysis_secs)
}

/// Builds the EnSF-family scheme for one sweep point.
fn sweep_scheme(
    operator: ObsOperatorKind,
    flow: bool,
    n_steps: usize,
    dim: usize,
    obs_sigma: f64,
) -> Box<dyn AnalysisScheme> {
    // Shared calibration for both transports (see EXPERIMENTS.md): mild
    // RTPS (the paper's 1.0 re-inflates the runaway reduced-grid forecast
    // spread until the few-step ODE ensemble leaves the SQG stability
    // envelope) and full variance shrinkage for the flow guidance (16
    // members are too few for usable raw per-component variances).
    let config = EnsfConfig {
        n_steps,
        seed: 5,
        spread_relaxation: 0.25,
        variance_smoothing: 1.0,
        ..Default::default()
    };
    match (operator, flow) {
        (ObsOperatorKind::Identity, false) => Box::new(EnsfScheme::new(config, dim, obs_sigma)),
        (ObsOperatorKind::Identity, true) => {
            Box::new(FlowMatchingEnsfScheme::new(config, dim, obs_sigma))
        }
        (ObsOperatorKind::Arctan { gain }, false) => {
            Box::new(ArctanEnsfScheme::new(config, dim, obs_sigma, gain))
        }
        (ObsOperatorKind::Arctan { gain }, true) => {
            Box::new(FlowMatchingArctanEnsfScheme::new(config, dim, obs_sigma, gain))
        }
    }
}

/// Step-count-vs-RMSE sweep: few-step probability-flow ODE vs the reverse
/// SDE at 1/2/5/10/25/100 steps, on the identity and arctan OSSEs, with a
/// LETKF reference row. The headline metrics — `matched_steps`,
/// `speedup_at_matched_rmse`, `matched_rmse_ratio` — compare the cheapest
/// flow grid whose steady RMSE stays within 10% of the 100-step SDE on the
/// identity OSSE, which is what `bench_gate` enforces.
fn bench_flow(quick: bool) -> Json {
    let step_counts: &[usize] = if quick { &[1, 5, 25] } else { &[1, 2, 5, 10, 25, 100] };
    let baseline_steps = 100usize;
    let mut sweep = Vec::new();
    // Identity-operator rows feed the matched-RMSE headline: (flow, steps, rmse, secs).
    let mut identity_rows: Vec<(bool, usize, f64, f64)> = Vec::new();

    for (op_name, operator) in [
        ("identity", ObsOperatorKind::Identity),
        ("arctan", ObsOperatorKind::Arctan { gain: FLOW_ARCTAN_GAIN }),
    ] {
        let config = flow_osse_config(quick, operator);
        let nature = nature_run(&config);
        let dim = nature.truth[0].len();

        for flow in [false, true] {
            // Quick mode truncates the grid but always runs the 100-step
            // SDE baseline so the derived metrics exist.
            let mut steps: Vec<usize> = step_counts.to_vec();
            if !flow && !steps.contains(&baseline_steps) {
                steps.push(baseline_steps);
            }
            for n_steps in steps {
                let mut scheme = sweep_scheme(operator, flow, n_steps, dim, config.obs_sigma);
                let (rmse, secs) = cycle_da(&config, &nature, scheme.as_mut());
                let method = if flow { "flow" } else { "ensf" };
                println!(
                    "flow sweep {op_name:8} {method:4} steps={n_steps:3}:  rmse {rmse:.5e}  analysis {secs:.4}s"
                );
                sweep.push(Json::obj(vec![
                    ("operator", Json::from(op_name)),
                    ("method", Json::from(method)),
                    ("n_steps", Json::from(n_steps as u64)),
                    ("rmse", Json::from(rmse)),
                    ("analysis_secs", Json::from(secs)),
                ]));
                if matches!(operator, ObsOperatorKind::Identity) {
                    identity_rows.push((flow, n_steps, rmse, secs));
                }
            }
        }

        if matches!(operator, ObsOperatorKind::Identity) {
            // LETKF reference row (identity obs only: the localized solver
            // assumes h = I).
            let mut letkf =
                LetkfScheme::new(letkf::LetkfConfig::default(), &config.params, config.obs_sigma);
            let (rmse, secs) = cycle_da(&config, &nature, &mut letkf);
            println!("flow sweep {op_name:8} letkf        :  rmse {rmse:.5e}  analysis {secs:.4}s");
            sweep.push(Json::obj(vec![
                ("operator", Json::from(op_name)),
                ("method", Json::from("letkf")),
                ("n_steps", Json::from(0u64)),
                ("rmse", Json::from(rmse)),
                ("analysis_secs", Json::from(secs)),
            ]));
        }
    }

    let &(_, _, base_rmse, base_secs) = identity_rows
        .iter()
        .find(|&&(flow, n, _, _)| !flow && n == baseline_steps)
        .expect("100-step SDE baseline always runs");

    // Cheapest flow grid inside the accuracy corridor; if none qualifies,
    // fall back to the most accurate finite flow row so the gate metrics
    // stay present and honestly report the miss via the RMSE ratio. NaN
    // rows (diverged runs, serialized as null) never qualify: comparisons
    // against NaN are false and the fallback filters to finite RMSE.
    let mut flow_rows: Vec<_> = identity_rows.iter().filter(|&&(flow, _, _, _)| flow).collect();
    flow_rows.sort_by_key(|&&(_, n, _, _)| n);
    let &&(_, matched_steps, matched_rmse, matched_secs) = flow_rows
        .iter()
        .find(|&&&(_, _, rmse, _)| rmse <= FLOW_RMSE_SLACK * base_rmse)
        .or_else(|| {
            flow_rows
                .iter()
                .filter(|&&&(_, _, rmse, _)| rmse.is_finite())
                .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite RMSE"))
        })
        .expect("at least one finite flow row in the sweep");
    let speedup = base_secs / matched_secs;
    let ratio = matched_rmse / base_rmse;
    println!(
        "flow matched: {matched_steps} steps  rmse ratio {ratio:.3}  analysis speedup {speedup:.1}x"
    );

    Json::obj(vec![
        ("ens_size", Json::from(8u64)),
        ("baseline_steps", Json::from(baseline_steps as u64)),
        ("sweep", Json::Arr(sweep)),
        ("ensf100_rmse", Json::from(base_rmse)),
        ("ensf100_analysis_secs", Json::from(base_secs)),
        ("matched_steps", Json::from(matched_steps as u64)),
        ("matched_rmse", Json::from(matched_rmse)),
        ("matched_rmse_ratio", Json::from(ratio)),
        ("speedup_at_matched_rmse", Json::from(speedup)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    // `--only <section>[,<section>...]` restricts the suite (dev iteration);
    // skipped sections are omitted from the report entirely, so never commit
    // a partial report as the gate baseline.
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(str::to_string).collect());
    let wants = |name: &str| only.as_ref().map(|o| o.iter().any(|s| s == name)).unwrap_or(true);
    let reps = if quick { 2 } else { 5 };

    header(
        "perf_suite",
        "Batched EnSF kernel and FFT plan cache performance suite",
    );

    let mut results = Vec::new();
    if wants("ensf") {
        results.push(("ensf", bench_ensf(quick, reps)));
    }
    if wants("sqg") {
        results.push(("sqg", bench_sqg(quick, reps)));
    }
    if wants("gemm") {
        results.push(("gemm", bench_gemm(quick, reps)));
    }
    if wants("flow") {
        results.push(("flow", bench_flow(quick)));
    }

    let payload = Json::obj(vec![
        ("id", Json::from("perf_suite")),
        ("quick", Json::Bool(quick)),
        ("reps", Json::from(reps as u64)),
        ("results", Json::obj(results)),
    ]);
    telemetry::report::write_json(std::path::Path::new(&out), &payload)
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("perf report written to {out}");
}
