//! Fig. 7: runtime percentage of computation, communication and IO when
//! training the three ViT sizes on 1024 GCDs.

use bench::Json;
use hpc::{simulate_step, Strategy, Topology, TrainJob};

const MB: u64 = 1024 * 1024;

fn main() {
    bench::header("Fig. 7", "runtime breakdown at 1024 GCDs (compute / comm / IO)");

    let topo = Topology::frontier(1024);
    println!(
        "{:>7} {:>16} {:>9} {:>22} {:>22} {:>16}",
        "input", "strategy", "step [s]", "compute", "comm (exposed)", "io"
    );
    let mut rows = Vec::new();
    for size in [64usize, 128, 256] {
        let job = TrainJob::table2(size);
        // 64²/128² fit DDP; the 2.5B model is run sharded (as in Fig. 9).
        let strategy = if size == 256 { Strategy::FsdpFullShard } else { Strategy::Ddp };
        let b = simulate_step(&topo, &job, strategy, 1024, 120 * MB);
        let (c, m, i) = b.fractions();
        println!(
            "{:>6}² {:>16} {:>9.3} {:>12.1}% {:>8} {:>12.1}% {:>8} {:>8.2}% {:>6}",
            size,
            format!("{strategy:?}"),
            b.total(),
            c * 100.0,
            bench::bar(c, 8),
            m * 100.0,
            bench::bar(m, 8),
            i * 100.0,
            bench::bar(i, 8),
        );
        rows.push(Json::obj(vec![
            ("input", Json::from(size)),
            ("strategy", Json::from(format!("{strategy:?}"))),
            ("step_secs", Json::Num(b.total())),
            ("compute_frac", Json::Num(c)),
            ("comm_frac", Json::Num(m)),
            ("io_frac", Json::Num(i)),
        ]));
    }

    println!("\npaper shape: compute + communication dominate; IO small;");
    println!("64² is more communication-bound than 128² (low-intensity kernels,");
    println!("small messages); 256² (sharded, 2x message volume) exceeds 128² too.");

    bench::emit_json(
        "fig7",
        "runtime breakdown at 1024 GCDs (compute / comm / IO)",
        Json::obj(vec![("gcds", Json::from(1024u64)), ("rows", Json::Arr(rows))]),
    );
}
