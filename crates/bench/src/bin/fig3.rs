//! Fig. 3: computational budget (Eq. 18) — total training FLOPs and
//! Frontier node-hours for the three ViT sizes on 1M images, 100 epochs.

use bench::Json;
use hpc::{achieved_flops, KernelShape};
use vit::{flops, VitConfig};

fn main() {
    bench::header("Fig. 3", "FLOPs and Frontier node-hours to train the ViT surrogates");

    let images = 1_000_000u64;
    let epochs = 100u64;
    println!("(dataset: {images} images, {epochs} epochs; Eq. 18: T = 6·tokens·E·M)\n");
    println!(
        "{:>7} {:>10} {:>12} {:>14} {:>16}",
        "input", "params", "FLOPs", "TF/GCD (ach.)", "node-hours"
    );
    let mut rows = Vec::new();
    for size in [64usize, 128, 256] {
        let c = VitConfig::table2(size);
        let total = flops::training_flops(&c, images, epochs);
        let shape =
            KernelShape { embed_dim: c.embed_dim, heads: c.heads, mlp_ratio: c.mlp_ratio };
        // A Frontier node sustains 8 GCDs at the achieved rate.
        let node_rate = 8.0 * achieved_flops(shape);
        let hours = flops::node_hours(total, node_rate);
        println!(
            "{:>6}² {:>9.2}B {:>12.2e} {:>14.1} {:>16.0}",
            size,
            c.param_count() as f64 / 1e9,
            total,
            achieved_flops(shape) / 1e12,
            hours
        );
        rows.push(Json::obj(vec![
            ("input", Json::from(size)),
            ("params", Json::from(c.param_count())),
            ("flops", Json::Num(total)),
            ("tflops_per_gcd", Json::Num(achieved_flops(shape) / 1e12)),
            ("node_hours", Json::Num(hours)),
        ]));
    }
    println!("\nshape check: FLOPs grow ~x8 per size step (tokens x4 at fixed patch,");
    println!("params x8/x2), node-hours track FLOPs over the achieved rate.");

    bench::emit_json(
        "fig3",
        "FLOPs and Frontier node-hours to train the ViT surrogates",
        Json::obj(vec![
            ("images", Json::from(images)),
            ("epochs", Json::from(epochs)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}
