//! Shared helpers for the table/figure regeneration binaries.

#![warn(missing_docs)]

pub use telemetry::Json;

/// Parses `--json <path>` from the process arguments, if present.
///
/// Every figure/table binary accepts this flag: alongside the human
/// console report it writes a machine-readable JSON document (results
/// plus a full telemetry snapshot) to the given path.
pub fn json_output_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Writes the structured report for a figure/table binary when `--json`
/// was passed, bundling the caption, the binary's own `results` payload
/// and a snapshot of all telemetry collected during the run.
///
/// # Panics
/// Panics if the file cannot be written (benches want loud failures).
pub fn emit_json(id: &str, caption: &str, results: Json) {
    let Some(path) = json_output_path() else { return };
    let payload = Json::obj(vec![
        ("id", Json::from(id)),
        ("caption", Json::from(caption)),
        ("results", results),
        ("telemetry", telemetry::report::snapshot_json()),
    ]);
    telemetry::report::write_json(std::path::Path::new(&path), &payload)
        .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    println!("json report written to {path}");
}

/// Prints a section header in the common report style.
///
/// Every binary calls this before doing work, so it doubles as the
/// initialization point: when a `--json` report was requested, telemetry
/// collection is switched on here so the final snapshot has content.
pub fn header(id: &str, caption: &str) {
    if json_output_path().is_some() {
        telemetry::set_enabled(true);
    }
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Formats a throughput in TFLOPS.
pub fn tflops(v: f64) -> String {
    format!("{:.1} TF", v / 1e12)
}

/// Formats bytes as a human-readable power-of-two size.
pub fn human_bytes(b: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * KB;
    const GB: u64 = 1024 * MB;
    if b >= GB {
        format!("{:.1} GiB", b as f64 / GB as f64)
    } else if b >= MB {
        format!("{:.0} MiB", b as f64 / MB as f64)
    } else if b >= KB {
        format!("{:.0} KiB", b as f64 / KB as f64)
    } else {
        format!("{b} B")
    }
}

/// Renders an ASCII sparkline bar scaled to `frac` of `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2 KiB");
        assert_eq!(human_bytes(64 * 1024 * 1024), "64 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024 / 2), "1.5 GiB");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "");
    }

    #[test]
    fn tflops_format() {
        assert_eq!(tflops(52.3e12), "52.3 TF");
    }
}
